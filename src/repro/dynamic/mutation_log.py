"""A bounded, epoch-indexed log of committed mutations.

The delta-aware result cache (:class:`repro.service.cache.ResultCache`)
needs to answer one question about a cached entry written at epoch
``E``: *exactly which mutations happened between ``E`` and now?*  The
:class:`MutationLog` records every committed
:class:`repro.dynamic.MutationEvent` under the epoch it produced, keeps
only the most recent ``depth`` of them, and — crucially — knows when it
*cannot* answer: a window reaching below the retained range (the log was
truncated) or containing an epoch that was never recorded (a manual
:meth:`poison`) returns ``None``, which the cache must treat as a plain
miss.  Truncation therefore degrades to recomputation, never to a stale
serve; ``tests/unit/test_mutation_log.py`` holds the property test.

Epochs are the service's mutation counter: strictly increasing, one per
committed mutation, so the retained events are contiguous and coverage
is a pair of integer comparisons — no per-event scanning on the miss
path.
"""

from __future__ import annotations

from collections import deque

from repro.dynamic.database import MutationEvent


class MutationLog:
    """The most recent ``depth`` mutations, indexed by epoch.

    Args:
        depth: maximum number of retained events (>= 1).
        floor: the highest epoch *not* covered by the log — entries
            cached at or below it can never be delta-validated.  New
            services start at their initial epoch (0).
    """

    __slots__ = ("_depth", "_events", "_floor", "_top", "truncations")

    def __init__(self, depth: int, *, floor: int = 0) -> None:
        if depth < 1:
            raise ValueError(f"log depth must be >= 1, got {depth}")
        self._depth = depth
        #: (epoch, event) pairs in strictly increasing epoch order.
        self._events: deque[tuple[int, MutationEvent]] = deque()
        self._floor = floor
        self._top = floor
        #: how many events have been dropped to honor ``depth``.
        self.truncations = 0

    @property
    def depth(self) -> int:
        """Retention capacity in events."""
        return self._depth

    @property
    def floor(self) -> int:
        """The highest uncovered epoch: windows reaching it return ``None``."""
        return self._floor

    @property
    def top(self) -> int:
        """The most recent recorded (or poisoned) epoch."""
        return self._top

    def __len__(self) -> int:
        return len(self._events)

    def record(self, epoch: int, event: MutationEvent) -> None:
        """Append one committed mutation under its (increasing) epoch."""
        if epoch <= self._top:
            raise ValueError(
                f"epochs must be strictly increasing: got {epoch} "
                f"after {self._top}"
            )
        self._events.append((epoch, event))
        self._top = epoch
        while len(self._events) > self._depth:
            dropped_epoch, _ = self._events.popleft()
            self._floor = dropped_epoch
            self.truncations += 1

    def poison(self, epoch: int) -> None:
        """Declare every epoch up to ``epoch`` unknowable.

        Used for epoch bumps that carry no mutation record (e.g.
        :meth:`repro.service.QueryService.invalidate`): entries cached
        at or below the poisoned epoch must miss, because the log cannot
        enumerate what changed.
        """
        self._floor = max(self._floor, epoch)
        self._top = max(self._top, epoch)
        while self._events and self._events[0][0] <= self._floor:
            self._events.popleft()

    def events_between(
        self, after: int, up_to: int
    ) -> tuple[MutationEvent, ...] | None:
        """Every event with epoch in ``(after, up_to]``, oldest first.

        Returns ``None`` when the log cannot *prove* it saw the whole
        window — ``after`` sits below the retention floor, or ``up_to``
        reaches past the last recorded epoch — in which case the caller
        must fall back to a full recomputation.
        """
        if after < self._floor or up_to > self._top:
            return None
        return tuple(
            event for epoch, event in self._events if after < epoch <= up_to
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MutationLog {len(self._events)}/{self._depth} events, "
            f"epochs ({self._floor}, {self._top}]>"
        )
