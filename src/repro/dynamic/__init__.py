"""Updatable sorted lists for continuous top-k monitoring.

The paper's lists are static snapshots, but its motivating applications
(network monitoring [8], data streams [22][24], sensor networks
[27][28]) update scores continuously.  This package provides the
substrate those applications need:

* :class:`OrderStatisticTreap` — a deterministic, size-augmented
  balanced tree with O(log n) ``insert`` / ``delete`` / ``rank`` /
  ``select``;
* :class:`DynamicSortedList` — a sorted list supporting O(log n) score
  updates while exposing the same read API as
  :class:`repro.lists.sorted_list.SortedList` (``entry_at``, ``lookup``,
  ...), so TA/BPA/BPA2 run on it unchanged;
* :class:`DynamicDatabase` — the matching database container;
* :class:`MutationLog` — a bounded, epoch-indexed record of committed
  :class:`MutationEvent` objects, the substrate of the service cache's
  delta-aware (partial) reuse across epochs.

See ``examples/continuous_monitoring.py`` for the end-to-end scenario.
"""

from repro.dynamic.database import DynamicDatabase, MutationEvent
from repro.dynamic.dynamic_list import DynamicSortedList
from repro.dynamic.mutation_log import MutationLog
from repro.dynamic.treap import OrderStatisticTreap

__all__ = [
    "OrderStatisticTreap",
    "DynamicSortedList",
    "DynamicDatabase",
    "MutationEvent",
    "MutationLog",
]
