"""An updatable sorted list with the same read API as SortedList.

Entries are keyed ``(-score, item)`` in an order-statistic treap, so the
list order matches :class:`repro.lists.sorted_list.SortedList` exactly
(score descending, ties by ascending item id) while ``insert`` /
``update`` / ``remove`` cost O(log n).  Reads are:

* ``entry_at(position)`` — treap ``select`` (direct/sorted access);
* ``position_of(item)`` / ``lookup(item)`` — treap ``rank`` on the
  item's current key (random access).

Because the read surface matches ``SortedList``, the metered accessors
and every algorithm in the library work on dynamic lists unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.dynamic.treap import OrderStatisticTreap
from repro.errors import DuplicateItemError, InvalidPositionError, UnknownItemError
from repro.types import ItemId, ListEntry, Position, Score


class DynamicSortedList:
    """A sorted list supporting O(log n) score updates."""

    __slots__ = ("_treap", "_score_of", "_name")

    def __init__(
        self, entries: Iterable[tuple[ItemId, Score]] = (), *, name: str = ""
    ) -> None:
        self._treap = OrderStatisticTreap()
        self._score_of: dict[ItemId, Score] = {}
        self._name = name
        for item, score in entries:
            self.insert(item, score)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, item: ItemId, score: Score) -> None:
        """Add a new item; raises :class:`DuplicateItemError` if present."""
        if item in self._score_of:
            raise DuplicateItemError(
                f"item {item} already in list {self._name or '?'}"
            )
        score = float(score)
        self._score_of[item] = score
        self._treap.insert((-score, item))

    def update(self, item: ItemId, score: Score) -> None:
        """Change an item's score; raises if the item is unknown."""
        old = self._score_of.get(item)
        if old is None:
            raise UnknownItemError(f"item {item} not in list {self._name or '?'}")
        score = float(score)
        if score == old:
            return
        self._treap.delete((-old, item))
        self._treap.insert((-score, item))
        self._score_of[item] = score

    def remove(self, item: ItemId) -> None:
        """Delete an item; raises if unknown."""
        old = self._score_of.pop(item, None)
        if old is None:
            raise UnknownItemError(f"item {item} not in list {self._name or '?'}")
        self._treap.delete((-old, item))

    def apply_delta(self, item: ItemId, delta: Score) -> None:
        """Adjust an item's score by ``delta`` (monitoring convenience)."""
        current = self._score_of.get(item)
        if current is None:
            raise UnknownItemError(f"item {item} not in list {self._name or '?'}")
        self.update(item, current + delta)

    # ------------------------------------------------------------------
    # SortedList-compatible read API
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable list label."""
        return self._name

    def __len__(self) -> int:
        return len(self._score_of)

    def __contains__(self, item: ItemId) -> bool:
        return item in self._score_of

    def entry_at(self, position: Position) -> ListEntry:
        """The entry at a 1-based position."""
        if not 1 <= position <= len(self):
            raise InvalidPositionError(
                f"position {position} out of range 1..{len(self)}"
            )
        neg_score, item = self._treap.select(position)
        return ListEntry(position=position, item=item, score=-neg_score)

    def score_at(self, position: Position) -> Score:
        """Local score at a 1-based position."""
        return self.entry_at(position).score

    def item_at(self, position: Position) -> ItemId:
        """Item id at a 1-based position."""
        return self.entry_at(position).item

    def position_of(self, item: ItemId) -> Position:
        """1-based position of ``item``."""
        score = self._score_of.get(item)
        if score is None:
            raise UnknownItemError(f"item {item} not in list {self._name or '?'}")
        return self._treap.rank((-score, item))

    def lookup(self, item: ItemId) -> tuple[Score, Position]:
        """Local score and position of ``item`` (random access)."""
        position = self.position_of(item)  # raises UnknownItemError if absent
        return self._score_of[item], position

    def items(self) -> tuple[ItemId, ...]:
        """All item ids in rank order (best first)."""
        return tuple(item for _neg, item in self._treap)

    def scores(self) -> tuple[Score, ...]:
        """All scores in rank order (descending)."""
        return tuple(-neg for neg, _item in self._treap)

    def entries(self) -> Iterator[ListEntry]:
        """Iterate the whole list as :class:`ListEntry` records."""
        for index, (neg_score, item) in enumerate(self._treap):
            yield ListEntry(position=index + 1, item=item, score=-neg_score)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self._name or "DynamicSortedList"
        return f"<{label}: {len(self)} items (dynamic)>"
