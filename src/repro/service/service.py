"""The embeddable query-service front-end.

:class:`QueryService` glues the three mechanisms of this package into
one submit path::

    plan  -> cache lookup -> shard fan-out -> exact merge -> truncate
    (planner)  (epoch-checked LRU)   (ShardExecutor)         (k-overfetch)

Every answer comes with a :class:`ServiceStats` record: the plan that
was chosen, whether the cache answered, the shard fan-out, the exact
access tallies the execution performed, and the wall-clock latency.

**Serving over mutable data.**  A service built from a
:class:`repro.dynamic.DynamicDatabase` subscribes to its mutation
stream: every update bumps the service *epoch* and is recorded in a
bounded :class:`repro.dynamic.MutationLog`, and the columnar snapshot
plus shard partitions are rebuilt on the next query — a mutation costs
one O(m log n) score capture (the post-state of a single-list change
is derived from the pre-state) plus an O(1) log append, never a cache
scan, and queries pay the snapshot refresh only when data actually
changed.  Cached results are *not* dropped wholesale: on lookup the
cache consults the log and serves entries whose certificate proves the
delta harmless (``revalidated``) or repairable by re-scoring a handful
of touched items (``patched``); see :mod:`repro.service.cache`.  Every
answer's :class:`ServiceStats` names its ``cache_outcome``.
"""

from __future__ import annotations

import asyncio
import time
import weakref
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.bench.batch import QuerySpec
from repro.columnar import ColumnarDatabase, patch_database
from repro.dynamic import DynamicDatabase, MutationLog
from repro.lists.database import Database
from repro.lists.sorted_list import SortedList
from repro.service.cache import ResultCache, normalized_query_key
from repro.service.planner import (
    PlanDecision,
    QueryPlanner,
    ServicePolicy,
    ShardDecision,
)
from repro.service.sharding import ShardExecutor, resolve_pool
from repro.types import AccessTally, CostModel, ItemId, Score, TopKResult


@dataclass(frozen=True)
class ServiceStats:
    """Per-query service telemetry."""

    plan: PlanDecision
    cache_hit: bool
    epoch: int  #: data epoch the answer was computed (or cached) under
    fanout: int  #: shards the execution fanned out to (1 on a cache hit)
    tally: AccessTally  #: accesses performed (zero on a cache hit)
    seconds: float  #: end-to-end latency of this submit
    planned_shards: int = 1  #: shard count the service executes with
    #: the query reused a result another in-flight ``submit_async`` was
    #: already computing (single-flight coalescing; counts as a hit)
    coalesced: bool = False
    #: the AIMD controller's concurrency window when this query started
    #: executing (0: not admitted through a controller — serial submits,
    #: cache hits, coalesced waits and fixed-semaphore replays)
    concurrency_window: int = 0
    #: how the result cache answered: ``"hit"`` (same epoch),
    #: ``"revalidated"`` (delta proven harmless), ``"patched"`` (touched
    #: items re-scored and re-merged), or ``"miss"`` (executed fresh;
    #: coalesced reuses of an in-flight execution also report ``"hit"``).
    cache_outcome: str = "miss"
    #: the block width the networked execution actually used (the
    #: adaptive controller's current width, or the policy's static one);
    #: 0 when the query did not execute over a network transport.
    effective_block_width: int = 0


class AdaptiveConcurrency:
    """AIMD admission control for :meth:`QueryService.gather_many`.

    Classic additive-increase / multiplicative-decrease, fed by the
    observed per-query execution latency: every completion below
    ``threshold`` times the exponentially-weighted latency baseline
    grows the window by ``increase / window`` (``increase`` additive
    steps per window's worth of acks); a completion above it multiplies
    the window by ``backoff``.  The window starts at half the ceiling
    (at least 2) and probes from there — the service finds its own
    concurrency instead of trusting a caller's fixed semaphore — and is
    always clamped to ``[min_window, max_window]``.

    The controller is an asyncio admission gate: :meth:`acquire` parks
    callers while ``in_flight >= window``; :meth:`release` records the
    latency, adapts the window and wakes exactly as many waiters as the
    new window admits.
    """

    def __init__(
        self,
        max_window: int,
        *,
        min_window: int = 1,
        start: int | None = None,
        increase: float = 2.0,
        backoff: float = 0.5,
        threshold: float = 2.0,
        smoothing: float = 0.2,
    ) -> None:
        if max_window < 1:
            raise ValueError(f"max_window must be >= 1, got {max_window}")
        if not 1 <= min_window <= max_window:
            raise ValueError(
                f"min_window must be in 1..{max_window}, got {min_window}"
            )
        if not 0.0 < backoff < 1.0:
            raise ValueError(f"backoff must be in (0, 1), got {backoff}")
        self._max = max_window
        self._min = min_window
        if start is None:
            # Half the ceiling: short bursts are not starved by a cold
            # start, while a latency spike still halves the window on
            # the very first congested completion.
            start = max(2, max_window // 2)
        self._window = float(min(max_window, max(min_window, start)))
        self._increase = increase
        self._backoff = backoff
        self._threshold = threshold
        self._smoothing = smoothing
        self._baseline: float | None = None  #: EWMA of observed latency
        self._in_flight = 0
        self._waiters: list[asyncio.Future] = []

    @property
    def window(self) -> int:
        """The current admission window (whole queries)."""
        return max(self._min, int(self._window))

    @property
    def in_flight(self) -> int:
        """Executions currently admitted."""
        return self._in_flight

    @property
    def baseline_seconds(self) -> float | None:
        """The latency baseline (``None`` before the first completion)."""
        return self._baseline

    async def acquire(self) -> None:
        """Wait for an admission slot."""
        while self._in_flight >= self.window:
            waiter: asyncio.Future = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            except asyncio.CancelledError:
                if waiter in self._waiters:
                    self._waiters.remove(waiter)
                self._wake()  # pass the slot along instead of losing it
                raise
        self._in_flight += 1

    def release(self, latency: float) -> None:
        """Record one completion's latency and adapt the window."""
        self._in_flight -= 1
        if self._baseline is None:
            self._baseline = latency
        if latency > self._threshold * self._baseline:
            # Congestion: this query ran far slower than the baseline —
            # shrink multiplicatively and let the baseline drift up
            # toward what the service actually sustains.
            self._window = max(float(self._min), self._window * self._backoff)
        else:
            self._window = min(
                float(self._max),
                self._window + self._increase / max(1.0, self._window),
            )
        alpha = self._smoothing
        self._baseline = (1.0 - alpha) * self._baseline + alpha * latency
        self._wake()

    def _wake(self) -> None:
        # Woken tasks re-check the window before admitting themselves
        # (their acquire loop), so waking a few too many under racing
        # releases is safe — they simply park again.
        available = self.window - self._in_flight
        while self._waiters and available > 0:
            waiter = self._waiters.pop(0)
            if not waiter.done():
                waiter.set_result(None)
                available -= 1


@dataclass(frozen=True)
class ServiceResult:
    """A served top-k answer plus its service telemetry."""

    result: TopKResult
    stats: ServiceStats

    @property
    def items(self):
        """The served top-k entries, best first."""
        return self.result.items

    @property
    def item_ids(self) -> tuple[ItemId, ...]:
        """The served item ids, best first."""
        return self.result.item_ids

    @property
    def scores(self) -> tuple[Score, ...]:
        """The served overall scores, best first."""
        return self.result.scores


@dataclass
class ServiceCounters:
    """Aggregate counters over a service's lifetime."""

    queries: int = 0
    cache_hits: int = 0  #: cache reuses of any kind plus coalesced reuses
    executions: int = 0
    snapshot_refreshes: int = 0
    #: refreshes served by delta-patching the previous snapshot in place
    #: (a subset of ``snapshot_refreshes``; the rest cold-rebuilt).
    snapshot_patches: int = 0
    coalesced: int = 0  #: async submits that joined an in-flight execution
    revalidated: int = 0  #: cache entries delta-proven current in place
    patched: int = 0  #: cache entries repaired by re-scoring touched items
    #: queries answered with the canonical empty result because every
    #: item had been removed — neither a cache reuse nor an execution.
    empty_serves: int = 0
    # Standing-query maintenance (per mutation x live subscription; see
    # :meth:`QueryService.watch` and :mod:`repro.watch`):
    watch_unchanged: int = 0  #: certificate proved the answer unaffected
    watch_patched: int = 0  #: answers repaired in place from event scores
    watch_recomputed: int = 0  #: answers re-planned through submit
    watch_deltas: int = 0  #: deltas pushed (visible changes only)
    # Adaptive planning (populated only with ``ServicePolicy.adaptive``):
    drift_epochs: int = 0  #: workload-drift epochs declared
    replans: int = 0  #: calibrated selections that changed the incumbent

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submits answered from the cache."""
        return self.cache_hits / self.queries if self.queries else 0.0


def _snapshot_dynamic(source: DynamicDatabase) -> ColumnarDatabase:
    """A columnar snapshot of a dynamic database's current state."""
    database = Database(
        [
            SortedList(zip(lst.items(), lst.scores()), name=lst.name)
            for lst in source.lists
        ]
    )
    return ColumnarDatabase.from_database(database)


class QueryService:
    """An embeddable sharded top-k query service.

    Args:
        database: the data to serve — a :class:`Database`, a
            :class:`ColumnarDatabase`, or a :class:`DynamicDatabase`.
            A dynamic database is snapshotted and *watched*: every
            mutation bumps the service epoch (dropping stale cache
            entries lazily) and the snapshot is rebuilt on the next
            submit.
        shards: shard fan-out (clamped to the item count), or
            ``"auto"`` to let the planner pick the count minimizing its
            predicted per-query cost for this host's pool and CPU
            budget (re-decided on every snapshot rebuild; the decision
            is exposed as :attr:`shard_decision` and in every
            :class:`ServiceStats`).
        pool: shard execution pool — ``"serial"`` / ``"thread"`` /
            ``"process"`` / ``"auto"`` (see
            :class:`repro.service.sharding.ShardExecutor`).
        cache_size: LRU capacity; ``0`` disables the result cache.
        policy: planning policy (:class:`ServicePolicy`).
        cost_model: cost model for the planner's predictions (defaults
            to the paper's ``cs=1, cr=log2 n``).
        snapshot: a pre-built columnar snapshot of a *dynamic*
            ``database``'s current state, standing in for the
            construction-time cold build (the warm-restart path; see
            :meth:`from_snapshot`).
    """

    def __init__(
        self,
        database,
        *,
        shards: int | str = 1,
        pool: str = "auto",
        cache_size: int = 1024,
        policy: ServicePolicy | None = None,
        cost_model: CostModel | None = None,
        snapshot: ColumnarDatabase | None = None,
    ) -> None:
        if shards != "auto" and (not isinstance(shards, int) or shards < 1):
            raise ValueError(
                f"shards must be a positive int or 'auto', got {shards!r}"
            )
        knobs = policy if policy is not None else ServicePolicy()
        self._knobs = knobs
        self._source: DynamicDatabase | None = None
        self._unsubscribe = None
        #: per-epoch mutation record enabling partial cache reuse and
        #: in-place snapshot patching; only a dynamic source produces
        #: deltas worth logging.
        self._log: MutationLog | None = None
        if isinstance(database, DynamicDatabase):
            self._source = database
            wants_log = cache_size > 0 or knobs.snapshot_patch_budget > 0
            if wants_log and knobs.delta_log_depth > 0:
                self._log = MutationLog(knobs.delta_log_depth)
            # Subscribe through a weakref so an un-closed service is not
            # kept alive (pools and all) by the database's subscriber
            # list; a dead service's callback is simply a no-op.  Score
            # vectors are requested only when a delta log consumes them
            # — a log-less service just counts epochs, and its mutations
            # keep the bare O(log n) cost.
            self_ref = weakref.ref(self)

            def _forward(event, _ref=self_ref):
                service = _ref()
                if service is not None:
                    service._on_mutation(event)

            self._unsubscribe = database.subscribe(
                _forward, with_scores=self._log is not None
            )
            # A caller-provided snapshot (the warm-restart path) stands
            # in for the cold build; the caller certifies it matches the
            # source's current state.
            database = (
                snapshot if snapshot is not None
                else _snapshot_dynamic(database)
            )
        elif snapshot is not None:
            raise ValueError(
                "snapshot= is only meaningful with a DynamicDatabase source"
            )
        self._shards_requested = shards
        self._pool = pool
        self._policy = policy
        self._cost_model = cost_model
        #: the adaptive control loop's state (feedback store, width
        #: controllers, drift detector); survives snapshot rebuilds.
        self._adaptive = None
        if knobs.adaptive:
            from repro.service.feedback import AdaptiveState

            self._adaptive = AdaptiveState.from_policy(knobs)
        self._epoch = 0
        #: the epoch the current snapshot was built at (== ``_epoch``
        #: except while a rebuild is pending or deferred).  Cache
        #: entries are always keyed to it: it names the data an
        #: execution actually read, even when ``_epoch`` moves mid-query.
        self._snapshot_epoch = 0
        self._dirty = False
        self._cache = (
            ResultCache(
                cache_size,
                log=self._log,
                patch_limit=knobs.delta_patch_limit,
            )
            if cache_size > 0
            else None
        )
        self.counters = ServiceCounters()
        self._executor: ShardExecutor | None = None
        self._planner: QueryPlanner | None = None
        self._shard_decision: ShardDecision | None = None
        #: normalized query key -> future of the in-flight execution
        #: (submit_async single-flight coalescing; cache-enabled only).
        self._inflight: dict[tuple, asyncio.Future] = {}
        #: every in-flight async execution, for snapshot quiescing.
        self._running: set[asyncio.Future] = set()
        #: standing-query manager (:meth:`watch`), created on first use.
        self._watch = None
        #: release function for a forced score-capture retain (set when
        #: the first watch registers on a log-less service).
        self._retain_scores = None
        #: reverse top-k state (:meth:`submit_reverse`), created on
        #: first use: the user weight registry, the pruning engine and
        #: — on a log-less dynamic source — its score-capture retain.
        self._reverse_registry = None
        self._reverse = None
        self._reverse_retain = None
        self._closed = False
        self._rebuild(database)

    def _rebuild(self, database) -> None:
        if not isinstance(database, ColumnarDatabase):
            database = ColumnarDatabase.from_database(database)
        # The planner comes first: with ``shards="auto"`` its cost model
        # decides how the executor partitions this snapshot.  The
        # feedback store outlives planners: a snapshot refresh must not
        # forget what the service has learned.
        self._planner = QueryPlanner(
            database,
            policy=self._policy,
            cost_model=self._cost_model,
            feedback=(
                self._adaptive.feedback if self._adaptive is not None else None
            ),
        )
        if (
            self._adaptive is not None
            and self._adaptive.overfetch_override is not None
        ):
            self._planner.set_overfetch_override(
                self._adaptive.overfetch_override
            )
        shards = self._shards_requested
        if shards == "auto":
            self._shard_decision = self._planner.choose_shard_count(
                pool=resolve_pool(self._pool)
            )
            shards = self._shard_decision.shards
        if self._executor is None:
            self._executor = ShardExecutor(
                database, shards=shards, pool=self._pool
            )
        else:
            # Keep pools (and their worker processes) warm across
            # snapshots; only the shard data and contexts are replaced.
            self._executor.reload(database, shards=shards)
        self._snapshot_epoch = self._epoch
        self._dirty = False

    def _refresh(self) -> None:
        """Bring the snapshot to the current epoch: patch, else rebuild.

        When the mutation log can prove exactly what happened since the
        snapshot's epoch and the net delta fits the policy's patch
        budget, the successor snapshot is derived in place from the
        previous one (:func:`repro.columnar.patch_database`) — paying
        per *touched* item instead of per epoch.  An unprovable window
        (log truncated or poisoned), a too-wide delta, or a disabled
        budget falls back to the cold rebuild from the dynamic source.
        """
        patched = None
        budget = self._knobs.snapshot_patch_budget
        if self._log is not None and budget > 0:
            window = self._log.events_between(self._snapshot_epoch, self._epoch)
            if window is not None:
                patched = patch_database(
                    self._executor.database, window, budget=budget
                )
        if patched is not None:
            self._rebuild(patched)
            self.counters.snapshot_patches += 1
        else:
            self._rebuild(_snapshot_dynamic(self._source))
        self.counters.snapshot_refreshes += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of served items (as of the current snapshot)."""
        return self._executor.database.n

    @property
    def m(self) -> int:
        """Number of lists."""
        return self._executor.database.m

    @property
    def shards(self) -> int:
        """Effective shard count."""
        return self._executor.shards

    @property
    def pool_kind(self) -> str:
        """The resolved execution pool kind."""
        return self._executor.pool_kind

    @property
    def epoch(self) -> int:
        """The current data epoch; mutations bump it."""
        return self._epoch

    @property
    def cache(self) -> ResultCache | None:
        """The result cache (``None`` when disabled)."""
        return self._cache

    @property
    def mutation_log(self) -> MutationLog | None:
        """The delta log backing partial cache reuse (``None`` when off)."""
        return self._log

    @property
    def planner(self) -> QueryPlanner:
        """The active planner (rebuilt with each snapshot)."""
        return self._planner

    @property
    def shard_decision(self) -> ShardDecision | None:
        """The auto-tuner's verdict (``None`` when shards were fixed)."""
        return self._shard_decision

    @property
    def adaptive_state(self):
        """The control loop's state (``None`` unless policy.adaptive)."""
        return self._adaptive

    # ------------------------------------------------------------------
    # Epoch management
    # ------------------------------------------------------------------

    def _on_mutation(self, event) -> None:
        self._epoch += 1
        self._dirty = True
        if self._log is not None:
            self._log.record(self._epoch, event)
            if self._cache is not None:
                # Entries that fell below the log's retention floor can
                # never be delta-validated again — expire them eagerly
                # (O(dropped), thanks to the cache's epoch index).
                self._cache.drop_expired(self._log.floor)
        if self._watch is not None:
            # After the log record: a subscription forced to recompute
            # re-enters submit, whose cache lookup must see this event.
            self._watch.on_mutation(event, self._epoch)
        if self._reverse is not None:
            # Per-user boundary entries are maintained eagerly from the
            # event's score vectors (the shared certify reasoning), so
            # most mutations re-decide only the users they touch.
            self._reverse.on_mutation(event)

    def invalidate(self) -> None:
        """Manually bump the epoch: every cached result becomes stale.

        The bump carries no mutation record, so the delta log (when
        present) is poisoned up to the new epoch — older entries *miss*
        rather than revalidate against a window the log cannot prove.

        Note this drops *results*, not data — a service over a static
        database keeps serving the snapshot taken at construction (the
        static backends are immutable, so there is nothing newer to
        read).  To serve data that changes, build the service from a
        :class:`DynamicDatabase`, whose mutations both bump the epoch
        and mark the snapshot for rebuild.
        """
        self._epoch += 1
        if self._log is not None:
            self._log.poison(self._epoch)
            if self._cache is not None:
                # Everything below the poisoned floor is permanently
                # dead (it can never revalidate); reclaim it now rather
                # than pinning it until lookup or eviction.
                self._cache.drop_expired(self._log.floor)
        if self._source is not None:
            self._dirty = True
        else:
            # Nothing to rebuild: the snapshot *is* current, and keying
            # future results to the new epoch is what expires old ones.
            self._snapshot_epoch = self._epoch
        if self._watch is not None:
            # No event record to classify against: every standing query
            # recomputes (pushing only if its answer visibly moved).
            self._watch.on_invalidate(self._epoch)
        if self._reverse is not None:
            # Same reasoning: no event to classify, so every cached
            # per-user boundary is unprovable — drop them all.
            self._reverse.flush()

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def _execute_plan(self, plan: PlanDecision, spec: QuerySpec) -> TopKResult:
        """Run one planned query on the chosen transport.

        With adaptive mode on, every execution (this thread or a
        ``submit_async`` worker) is timed and fed back: the plan's arm
        in the feedback store, and — for networked runs — the
        transport's width controller, whose :class:`WidthProbe` the
        drivers consult at every round.
        """
        adaptive = self._adaptive
        started = time.perf_counter()
        if plan.transport.startswith("network-"):
            # The simulated network as transport: the same unified
            # drivers the shard path replays, over list-owner nodes.
            from repro.distributed.algorithms import (
                DistributedBPA,
                DistributedBPA2,
                DistributedTA,
            )
            from repro.service.feedback import WidthProbe, plan_signature

            driver_cls = {
                "ta": DistributedTA,
                "bpa": DistributedBPA,
                "bpa2": DistributedBPA2,
            }[plan.algorithm]
            protocol = plan.transport.split("-", 1)[1]
            policy = self._planner.policy
            width: object = policy.block_width
            controller = None
            if adaptive is not None:
                controller = adaptive.controller_for(
                    plan.transport,
                    plan_signature(spec.scoring, plan.k_fetch),
                )
                width = WidthProbe(controller)
            result = driver_cls(
                protocol=protocol,
                block_width=width,
                owners=policy.owners if policy.owners > 0 else None,
                placement=policy.placement,
            ).run(self._executor.database, plan.k_fetch, spec.scoring)
            if adaptive is not None:
                seconds = time.perf_counter() - started
                result.extras["block_width"] = width.last
                controller.record(
                    seconds=seconds,
                    rounds=result.rounds,
                    fetched_positions=width.total,
                    stop_position=max(1, result.stop_position),
                    k=plan.k_fetch,
                )
                network = result.extras.get("network") or {}
                self._record_feedback(
                    plan,
                    spec,
                    seconds,
                    rounds=result.rounds,
                    messages=int(network.get("messages", 0)),
                )
            return result
        result = self._executor.run(
            plan.algorithm, spec.options, plan.k_fetch, spec.scoring
        )
        if adaptive is not None:
            self._record_feedback(
                plan,
                spec,
                time.perf_counter() - started,
                rounds=result.rounds,
                messages=0,
            )
        return result

    def _record_feedback(
        self,
        plan: PlanDecision,
        spec: QuerySpec,
        seconds: float,
        *,
        rounds: int,
        messages: int,
    ) -> None:
        """Fold one completed execution into the feedback store."""
        from repro.service.feedback import plan_signature

        feedback = self._adaptive.feedback
        feedback.record(
            algorithm=plan.algorithm,
            transport=plan.transport,
            signature=plan_signature(spec.scoring, plan.k_fetch),
            predicted_cost=float(
                plan.predicted_costs.get(plan.algorithm, 0.0)
            ),
            seconds=seconds,
            rounds=rounds,
            messages=messages,
        )
        self.counters.replans = feedback.replans

    def _observe_drift(self, spec: QuerySpec, plan: PlanDecision) -> None:
        """Stream one query into the drift detector; re-tune on an epoch.

        Keys use the *requested* shape (``spec.algorithm``, which stays
        ``"auto"`` across exploration) so adaptation's own algorithm
        churn never reads as workload drift.  On a drift epoch: plans
        are invalidated, cache overfetch is re-tuned to the window's
        key-repetition profile, and — with ``shards="auto"`` and no
        in-flight executions pinning the pools — the shard count is
        re-chosen for the new regime's median ``k``.
        """
        adaptive = self._adaptive
        drift = adaptive.drift
        key = drift.bucket(spec.algorithm, plan.k_requested, spec.scoring)
        if not drift.observe(key, k=plan.k_requested):
            return
        self.counters.drift_epochs += 1
        adaptive.feedback.invalidate()
        # A narrow repeating window hits the cache on exact keys anyway
        # — overfetch only inflates its cold fetches, so turn it off;
        # diverse windows keep the policy default (shared pow2 buckets).
        override = False if drift.distinct_ratio <= 0.5 else None
        adaptive.overfetch_override = override
        self._planner.set_overfetch_override(override)
        if self._shards_requested == "auto" and not self._running:
            ks = sorted(drift.recent_k) or [plan.k_requested]
            median_k = ks[len(ks) // 2]
            decision = self._planner.choose_shard_count(
                pool=resolve_pool(self._pool), k=median_k
            )
            if decision.shards != self._executor.shards:
                self._shard_decision = decision
                self._executor.reload(
                    self._executor.database, shards=decision.shards
                )

    def _rescore(
        self, items: Sequence[ItemId]
    ) -> Mapping[ItemId, tuple[Score, ...] | None]:
        """Current per-list local scores of ``items`` (``None`` = absent).

        Batched random access (``lookup_many``) against the live
        snapshot — the cache's patch path re-scores the few touched
        objects through this instead of re-running the query.
        """
        database = self._executor.database
        known = database.item_ids
        present = [item for item in items if item in known]
        scores: dict[ItemId, tuple[Score, ...] | None] = {
            item: None for item in items
        }
        if present:
            wanted = np.asarray(present, dtype=np.int64)
            columns = [lst.lookup_many(wanted)[0] for lst in database.lists]
            for row, item in enumerate(present):
                scores[item] = tuple(
                    float(column[row]) for column in columns
                )
        return scores

    def _package(
        self,
        plan: PlanDecision,
        full: TopKResult,
        started: float,
        epoch: int,
        *,
        outcome: str,
        coalesced: bool = False,
        window: int = 0,
    ) -> ServiceResult:
        served = self._truncate(full, plan)
        reused = outcome != "miss" or coalesced
        executed_networked = (
            not reused and plan.transport.startswith("network-")
        )
        stats = ServiceStats(
            plan=plan,
            cache_hit=reused,
            epoch=epoch,
            fanout=1 if reused else int(full.extras.get("shards", 1)),
            tally=AccessTally() if reused else full.tally.copy(),
            seconds=time.perf_counter() - started,
            planned_shards=self.shards,
            coalesced=coalesced,
            concurrency_window=window,
            cache_outcome="hit" if coalesced else outcome,
            effective_block_width=(
                int(full.extras.get("block_width", 1))
                if executed_networked
                else 0
            ),
        )
        self.counters.queries += 1
        self.counters.cache_hits += reused
        self.counters.executions += not reused
        self.counters.coalesced += coalesced
        self.counters.revalidated += outcome == "revalidated"
        self.counters.patched += outcome == "patched"
        return ServiceResult(result=served, stats=stats)

    def submit(self, spec: QuerySpec) -> ServiceResult:
        """Answer one query: plan, consult the cache, execute, merge."""
        if self._closed:
            raise RuntimeError("service is closed")
        started = time.perf_counter()
        deferred = False
        if self._dirty and self._source is not None:
            if self._running:
                # In-flight ``submit_async`` executions pin the current
                # snapshot (the executor's pools cannot be reloaded
                # mid-query), so this query serves the pinned snapshot
                # and leaves the rebuild to the next submit after the
                # flights drain — the async path quiesces the same way.
                deferred = True
            else:
                self._refresh()

        if self.n == 0:
            # Every item was removed from the source: "all items, ranked"
            # is the empty answer, not a planning error (the caller's k
            # was valid; the data is just gone for now).
            return self._serve_empty(spec, started)

        # Cache entries are keyed to the *snapshot* epoch — the data the
        # execution actually reads.  A mutation landing mid-query bumps
        # ``self._epoch`` but not the snapshot, so the entry stays
        # honest: the next lookup sees the gap and delta-validates (or
        # misses) through the mutation log instead of serving stale data
        # as fresh.  A deferred rebuild serves data whose epoch already
        # passed, so the cache is bypassed entirely for that query.
        epoch = self._snapshot_epoch
        caching = self._cache is not None and not deferred
        plan = self._planner.plan(spec, cache_enabled=caching)
        if self._adaptive is not None:
            self._observe_drift(spec, plan)
        outcome = "miss"
        full: TopKResult | None = None
        if caching:
            key = normalized_query_key(
                plan.algorithm, plan.k_fetch, spec.scoring, spec.options
            )
            looked = self._cache.lookup(
                key, epoch, scoring=spec.scoring, rescore=self._rescore
            )
            full, outcome = looked.value, looked.outcome
        if full is None:
            full = self._execute_plan(plan, spec)
            # An underfull answer (fewer items than planned — impossible
            # today, the planner clamps k to n, but cheap to guard) has
            # no exclusion boundary for the delta certificate: never
            # cache one.
            if caching and len(full.items) == plan.k_fetch:
                self._cache.put(key, full, epoch)
        return self._package(plan, full, started, epoch, outcome=outcome)

    def submit_many(self, specs: Sequence[QuerySpec]) -> list[ServiceResult]:
        """Answer a batch of queries in order (empty batch -> empty list)."""
        return [self.submit(spec) for spec in specs]

    # ------------------------------------------------------------------
    # Async query path
    # ------------------------------------------------------------------

    async def submit_async(
        self,
        spec: QuerySpec,
        *,
        semaphore: asyncio.Semaphore | None = None,
        limiter: AdaptiveConcurrency | None = None,
    ) -> ServiceResult:
        """Answer one query without blocking the event loop.

        Planning and cache lookups run inline on the loop (they are
        microseconds); execution is offloaded to a worker thread, gated
        by ``semaphore`` when given, or admitted through ``limiter`` —
        the AIMD controller :meth:`gather_many` shares across a replay,
        which also feeds it the observed execution latency and stamps
        the admission window into
        :attr:`ServiceStats.concurrency_window`.  With the result cache
        enabled, identical
        queries in flight are *coalesced*: the first submit executes,
        the rest await the same future and count as cache hits — so a
        concurrent replay performs exactly the executions (and reports
        the hit counts) of a serial one, which
        ``tests/integration/test_service_async.py`` asserts.  With the
        cache disabled every submit executes, matching the serial
        cache-off path's accounting.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        started = time.perf_counter()
        if self._dirty and self._source is not None:
            # Quiesce in-flight executions before swapping the snapshot:
            # the executor's pools cannot be reloaded mid-query.
            while self._running:
                await asyncio.gather(
                    *(asyncio.shield(f) for f in list(self._running)),
                    return_exceptions=True,
                )
            if self._dirty:
                self._refresh()

        if self.n == 0:
            return self._serve_empty(spec, started)

        caching = self._cache is not None
        plan = self._planner.plan(spec, cache_enabled=caching)
        if self._adaptive is not None:
            self._observe_drift(spec, plan)
        key = normalized_query_key(
            plan.algorithm, plan.k_fetch, spec.scoring, spec.options
        )
        # The execution reads the current snapshot, so its result — and
        # any cache entry holding it — is keyed to the *snapshot* epoch.
        # A mutation landing mid-flight bumps ``self._epoch`` but not
        # the snapshot; the entry stays keyed to the data it was
        # computed from, and the next lookup delta-validates (or
        # misses) across the gap through the mutation log.
        epoch = self._snapshot_epoch
        if caching:
            while True:
                looked = self._cache.lookup(
                    key, epoch, scoring=spec.scoring, rescore=self._rescore
                )
                if looked.value is not None:
                    return self._package(
                        plan,
                        looked.value,
                        started,
                        epoch,
                        outcome=looked.outcome,
                    )
                pending = self._inflight.get(key)
                if pending is None:
                    break
                try:
                    full = await asyncio.shield(pending)
                except asyncio.CancelledError:
                    if not pending.cancelled():
                        raise  # our own cancellation, not the owner's
                    # The executing owner was cancelled.  If this task
                    # was cancelled too (e.g. the whole gather is being
                    # torn down), honor that instead of retrying;
                    # otherwise retry, possibly becoming the new owner.
                    # (Task.cancelling is 3.11+; on 3.10 a simultaneous
                    # cancel falls back to the retry.)
                    cancelling = getattr(
                        asyncio.current_task(), "cancelling", None
                    )
                    if cancelling is not None and cancelling() > 0:
                        raise
                    continue
                return self._package(
                    plan, full, started, epoch, outcome="miss", coalesced=True
                )

        future: asyncio.Future = asyncio.get_running_loop().create_future()
        if caching:
            self._inflight[key] = future
        self._running.add(future)
        window = 0
        try:
            if limiter is not None:
                await limiter.acquire()
                window = limiter.window
                admitted = time.perf_counter()
                try:
                    full = await asyncio.to_thread(
                        self._execute_plan, plan, spec
                    )
                finally:
                    limiter.release(time.perf_counter() - admitted)
            elif semaphore is None:
                full = await asyncio.to_thread(self._execute_plan, plan, spec)
            else:
                async with semaphore:
                    full = await asyncio.to_thread(self._execute_plan, plan, spec)
        except asyncio.CancelledError:
            # Cancel (don't poison) the shared future: coalesced waiters
            # see a cancelled owner and re-execute themselves.
            future.cancel()
            raise
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # consume; waiters re-raise their own copy
            raise
        finally:
            if caching:
                self._inflight.pop(key, None)
            self._running.discard(future)
        future.set_result(full)
        # Underfull answers carry no certificate boundary; see submit().
        if caching and len(full.items) == plan.k_fetch:
            self._cache.put(key, full, epoch)
        return self._package(
            plan, full, started, epoch, outcome="miss", window=window
        )

    async def gather_many(
        self,
        specs: Sequence[QuerySpec],
        *,
        concurrency: int = 8,
        adaptive: bool = True,
    ) -> list[ServiceResult]:
        """Answer a batch concurrently; results come back in spec order.

        Admission is adaptive by default: an :class:`AdaptiveConcurrency`
        controller starts at half the ceiling and AIMD-tunes the window
        from each execution's observed latency, with ``concurrency`` as
        the ceiling; every executed query's :class:`ServiceStats` records
        the window it was admitted under.  Pass ``adaptive=False`` for
        the legacy fixed semaphore of exactly ``concurrency`` permits.
        Cache hits and coalesced waits are never throttled — they do no
        work.
        """
        if adaptive:
            limiter = AdaptiveConcurrency(max_window=max(1, concurrency))
            return list(
                await asyncio.gather(
                    *(
                        self.submit_async(spec, limiter=limiter)
                        for spec in specs
                    )
                )
            )
        semaphore = asyncio.Semaphore(max(1, concurrency))
        return list(
            await asyncio.gather(
                *(self.submit_async(spec, semaphore=semaphore) for spec in specs)
            )
        )

    def serve_concurrently(
        self,
        specs: Sequence[QuerySpec],
        *,
        concurrency: int = 8,
        adaptive: bool = True,
    ) -> list[ServiceResult]:
        """Synchronous convenience wrapper around :meth:`gather_many`."""
        return asyncio.run(
            self.gather_many(specs, concurrency=concurrency, adaptive=adaptive)
        )

    # ------------------------------------------------------------------
    # Standing queries
    # ------------------------------------------------------------------

    def watch(self, spec: QuerySpec, *, callback=None):
        """Register a standing top-k query; returns a live subscription.

        The initial answer is computed through the normal submit path;
        from then on every committed mutation of the dynamic source is
        classified against the maintained answer through the shared
        k-th-entry certificate (:mod:`repro.exec.certify`) — provably
        harmless mutations cost nothing, small deltas are repaired in
        place from the event's own score vectors, and everything else
        recomputes.  A :class:`repro.watch.ResultDelta` is delivered
        (to ``callback``, or queued for ``poll()``) only when the
        visible answer actually changes.  Maintenance runs
        synchronously inside the mutation call, so after any mutation
        returns, every subscription's ``entries`` is already current.

        Requires a :class:`DynamicDatabase` source (a static snapshot
        never changes, so there is nothing to watch).  Policy knobs:
        ``max_subscriptions`` caps concurrently live subscriptions,
        ``watch_patch_limit`` bounds the in-place repair width.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if self._source is None:
            from repro.errors import ServiceError

            raise ServiceError(
                "standing queries need a DynamicDatabase source; a "
                "static database never mutates, so there is nothing "
                "to watch"
            )
        if self._watch is None:
            from repro.service.cache import EXACT_SCORE_ALGORITHMS
            from repro.watch.manager import SubscriptionManager

            self._watch = SubscriptionManager(
                submit=self.submit,
                exact_algorithms=EXACT_SCORE_ALGORITHMS,
                patch_limit=self._knobs.watch_patch_limit,
                max_subscriptions=self._knobs.max_subscriptions,
                counters=self.counters,
            )
            if self._log is None:
                # The service subscribed score-less (no delta log);
                # maintenance needs the event vectors, so force capture
                # on for as long as the service lives.
                self._retain_scores = self._source.retain_scores()
        subscription = self._watch.watch(spec, callback=callback)
        if subscription.epoch != self._epoch:
            # In-flight async executions pinned an older snapshot, so
            # the initial answer is honestly stale — but a standing
            # query must start current (the events in the gap were
            # never classified against it).
            from repro.errors import ServiceError

            subscription.cancel()
            raise ServiceError(
                "cannot register a standing query while in-flight "
                "executions defer the snapshot rebuild; retry after "
                "they drain"
            )
        return subscription

    @property
    def subscriptions(self) -> tuple:
        """The live standing-query subscriptions (empty when none)."""
        if self._watch is None:
            return ()
        return self._watch.subscriptions

    # ------------------------------------------------------------------
    # Reverse top-k
    # ------------------------------------------------------------------

    @property
    def reverse_registry(self):
        """The reverse top-k user registry (created on first access).

        Register per-user weight vectors here
        (:class:`repro.reverse.UserWeightRegistry`), then ask
        :meth:`submit_reverse` which of them rank a given item in
        their top-k.
        """
        if self._reverse_registry is None:
            from repro.reverse import UserWeightRegistry

            self._reverse_registry = UserWeightRegistry()
        return self._reverse_registry

    def _ensure_reverse(self):
        if self._reverse is None:
            from repro.reverse import ReverseTopkEngine

            self._reverse = ReverseTopkEngine(
                self.reverse_registry,
                runner=self._reverse_execute,
                patch_limit=self._knobs.delta_patch_limit,
                boundary_limit=self._knobs.reverse_boundary_limit,
            )
            if self._source is not None and self._log is None:
                # The service subscribed score-less (no delta log);
                # boundary maintenance needs the event vectors, so
                # force capture on for as long as the service lives.
                self._reverse_retain = self._source.retain_scores()
        return self._reverse

    def _reverse_execute(self, scoring, k: int):
        """One exact certified top-k for the reverse engine's fallback.

        Runs through the planner and the normal execution transports —
        but **never** through the result cache: a cached entry may be a
        tie-shifted sibling of the canonical answer (the cache's
        ``answers_match`` contract), while reverse membership is defined
        bit-exactly against the ``(-score, id)`` order.  Fresh merges
        are canonical, so the returned entries decide membership by
        plain lookup.
        """
        spec = QuerySpec(algorithm="bpa2", k=k, scoring=scoring)
        plan = self._planner.plan(spec, cache_enabled=False)
        full = self._execute_plan(plan, spec)
        return self._truncate(full, plan).items

    def submit_reverse(self, item: ItemId, k: int):
        """Which registered users rank ``item`` inside their top-``k``?

        The exact monochromatic reverse top-k over the current
        snapshot: a user matches iff ``item`` appears in their
        brute-force top-``k`` (ties at the boundary resolve by
        ascending id).  Most users are decided by two vectorized bound
        comparisons against per-list order statistics; the undecided
        few run (or reuse) one certified top-k each, whose cached
        boundary is then maintained incrementally under the mutation
        stream.  Returns a :class:`repro.reverse.ReverseResult`.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        deferred = False
        if self._dirty and self._source is not None:
            if self._running:
                # In-flight async executions pin the snapshot (see
                # submit()); serve the pinned one, bypassing the
                # boundary cache below — its entries are maintained to
                # the *live* epoch, not this stale snapshot's.
                deferred = True
            else:
                self._refresh()
        engine = self._ensure_reverse()
        return engine.query(
            item,
            k,
            database=self._executor.database,
            token=self._snapshot_epoch,
            cacheable=not deferred and self._snapshot_epoch == self._epoch,
        )

    @property
    def reverse_engine(self):
        """The reverse top-k engine (``None`` before the first query)."""
        return self._reverse

    def _serve_empty(self, spec: QuerySpec, started: float) -> ServiceResult:
        from repro.errors import InvalidQueryError

        if spec.k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {spec.k}")
        plan = PlanDecision(
            algorithm=spec.algorithm,
            backend="none",
            k_requested=0,
            k_fetch=0,
            reason="database is empty",
        )
        result = TopKResult(
            items=(),
            tally=AccessTally(),
            rounds=0,
            stop_position=0,
            algorithm=spec.algorithm,
            extras={"shards": 0},
        )
        stats = ServiceStats(
            plan=plan,
            cache_hit=False,
            epoch=self._epoch,
            fanout=0,
            tally=AccessTally(),
            seconds=time.perf_counter() - started,
        )
        self.counters.queries += 1
        self.counters.empty_serves += 1
        return ServiceResult(result=result, stats=stats)

    @staticmethod
    def _truncate(full: TopKResult, plan: PlanDecision) -> TopKResult:
        """Serve the requested prefix of an overfetched answer.

        A prefix of an exact ranked top-``k_fetch`` is the exact ranked
        top-``k_requested`` under the same total order, so truncation
        never changes correctness — only how much the cache can reuse.
        """
        if plan.k_fetch == plan.k_requested:
            return full
        return TopKResult(
            items=full.items[: plan.k_requested],
            tally=full.tally.copy(),
            rounds=full.rounds,
            stop_position=full.stop_position,
            algorithm=full.algorithm,
            extras={**full.extras, "k_fetched": plan.k_fetch},
        )

    # ------------------------------------------------------------------
    # Snapshot persistence (warm restarts)
    # ------------------------------------------------------------------

    def save_snapshot(self, path, *, compress: bool = True) -> int:
        """Persist the served snapshot to ``path``; returns its epoch.

        The snapshot is refreshed first if mutations are pending (so the
        file captures the source's current state), unless in-flight
        async executions pin the current one — then the pinned snapshot
        is saved under the epoch it honestly carries.  The write is
        atomic; a crash mid-save leaves any previous file intact.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        from repro.storage import write_snapshot

        if self._dirty and self._source is not None and not self._running:
            self._refresh()
        write_snapshot(
            self._executor.database,
            path,
            epoch=self._snapshot_epoch,
            compress=compress,
        )
        return self._snapshot_epoch

    @classmethod
    def from_snapshot(
        cls, path, *, source: DynamicDatabase | None = None, **kwargs
    ) -> "QueryService":
        """Warm-start a service from a snapshot file.

        The snapshot is loaded (checksum-verified) and served directly —
        no cold rebuild.  Pass ``source`` to keep serving a live
        :class:`DynamicDatabase` whose current state the snapshot
        captures: the service subscribes to its mutations as usual, and
        its delta log is floored at the restored epoch so only
        post-restart windows can ever be proven.  ``kwargs`` are
        forwarded to the constructor (``shards``, ``pool``, ...).
        """
        from repro.storage import load_snapshot

        database, epoch = load_snapshot(path)
        if source is not None:
            service = cls(source, snapshot=database, **kwargs)
        else:
            service = cls(database, **kwargs)
        service._epoch = epoch
        service._snapshot_epoch = epoch
        if service._log is not None:
            # Epochs below the restored stamp predate this process; the
            # log must never claim to cover them.
            service._log.poison(epoch)
        return service

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the executor pools and detach from the source."""
        if self._closed:
            return
        self._closed = True
        if self._watch is not None:
            self._watch.cancel_all()
            self._watch = None
        if self._retain_scores is not None:
            self._retain_scores()
            self._retain_scores = None
        if self._reverse_retain is not None:
            self._reverse_retain()
            self._reverse_retain = None
        self._reverse = None
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cache = self._cache.maxsize if self._cache is not None else "off"
        return (
            f"<QueryService n={self.n} m={self.m} shards={self.shards} "
            f"pool={self.pool_kind} cache={cache} epoch={self._epoch}>"
        )
