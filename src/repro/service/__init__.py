"""An embeddable sharded top-k query service.

The paper's algorithms answer *one* query cheaply; this package serves
*traffic*.  Four cooperating parts (see each module's docstring for the
full story):

* :mod:`repro.service.planner` — per-query planning: algorithm
  (TA/BPA/BPA2/NRA), backend (vectorized kernel vs. reference), and
  k-overfetch, driven by :mod:`repro.analysis.model` predictions over
  *observed* list statistics;
* :mod:`repro.service.sharding` — row-wise shard fan-out over a
  serial/thread/process pool with a provably exact, certificate-checked
  top-k merge;
* :mod:`repro.service.cache` — an LRU result cache keyed by normalized
  query specs, invalidated lazily through epochs so mutations stay O(1);
* :mod:`repro.service.service` — :class:`QueryService`, the
  ``submit()/submit_many()`` front-end — plus the async
  ``submit_async()/gather_many()`` path with bounded concurrency and
  single-flight coalescing — producing per-query :class:`ServiceStats`,
  wired to :class:`repro.dynamic.DynamicDatabase` mutation streams for
  epoch bumps.

Execution itself (drivers, kernel dispatch, the exact merge) lives in
the shared core, :mod:`repro.exec`; the planner can also route a query
over the simulated network transport (:mod:`repro.distributed`) when
its cost model's network extension says so.

:mod:`repro.service.workload` replays Zipf-popular workloads against a
service (the ``repro-topk serve-workload`` CLI) and backs
``reports/service_speedup.json``.

:mod:`repro.service.feedback` closes the control loop: a
:class:`PlanFeedback` store calibrates the planner's cost predictions
against observed latencies, an AIMD :class:`BlockWidthController` tunes
the networked block width online, and a :class:`DriftDetector` fires
re-tuning epochs when the workload's shape moves
(``ServicePolicy(adaptive=True)``; benchmarked by
:func:`adaptive_contrast` behind ``reports/adaptive_speedup.json``).
"""

from repro.service.cache import (
    CACHE_OUTCOMES,
    CacheLookup,
    CacheStats,
    ResultCache,
    normalized_query_key,
    scoring_key,
)
from repro.service.feedback import (
    WIDTH_LATTICE,
    AdaptiveState,
    BlockWidthController,
    DriftDetector,
    PlanFeedback,
    WidthProbe,
    plan_signature,
    total_variation,
)
from repro.service.planner import (
    ListStatistics,
    PlanDecision,
    QueryPlanner,
    ServicePolicy,
    ShardDecision,
)
from repro.service.service import (
    AdaptiveConcurrency,
    QueryService,
    ServiceCounters,
    ServiceResult,
    ServiceStats,
)
from repro.service.sharding import (
    MERGE_EXACT_ALGORITHMS,
    ShardExecutor,
    merge_shard_results,
    partition_database,
)
from repro.service.workload import (
    WorkloadConfig,
    WorkloadMutator,
    adaptive_contrast,
    answers_match,
    build_workload,
    dynamic_from,
    fresh_topk,
    mutation_contrast,
    replay,
    replay_async,
    replay_with_mutations,
    run_workload,
    speedup_benchmark,
    write_report,
)

__all__ = [
    "AdaptiveConcurrency",
    "QueryService",
    "ServiceResult",
    "ServiceStats",
    "ServiceCounters",
    "ServicePolicy",
    "QueryPlanner",
    "PlanDecision",
    "ShardDecision",
    "ListStatistics",
    "ResultCache",
    "CacheStats",
    "CacheLookup",
    "CACHE_OUTCOMES",
    "normalized_query_key",
    "scoring_key",
    "ShardExecutor",
    "MERGE_EXACT_ALGORITHMS",
    "merge_shard_results",
    "partition_database",
    "PlanFeedback",
    "BlockWidthController",
    "DriftDetector",
    "AdaptiveState",
    "WidthProbe",
    "WIDTH_LATTICE",
    "plan_signature",
    "total_variation",
    "WorkloadConfig",
    "WorkloadMutator",
    "adaptive_contrast",
    "answers_match",
    "build_workload",
    "dynamic_from",
    "fresh_topk",
    "mutation_contrast",
    "replay",
    "replay_async",
    "replay_with_mutations",
    "run_workload",
    "speedup_benchmark",
    "write_report",
]
