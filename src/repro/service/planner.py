"""Cost-model query planning: algorithm, backend and k-overfetch.

The planner answers three questions per query, before any list is
touched:

* **Which algorithm?**  For an ``"auto"`` query it predicts the paper's
  execution cost (:class:`repro.types.CostModel`) of TA, BPA and BPA2
  from *observed* list statistics — the actual overall-score
  distribution and the actual per-position thresholds of this database,
  not a distributional assumption — combined with the closed-form
  best-position advance model of :mod:`repro.analysis.model`, and picks
  the cheapest.  NRA (sorted access only) is selected when the policy
  says random access is unavailable, the regime NRA exists for; its
  quadratic bound-maintenance cost prices it out everywhere else.
* **Which backend?**  The exact vectorized columnar kernel when the
  configuration has one (``TopKAlgorithm.fast_kernel()``), the reference
  implementation through the metered accessors otherwise.  Either way
  the results are identical — the differential suite proves it — so this
  is purely a throughput decision.
* **How much to fetch?**  With caching enabled, ``k`` is rounded up to
  the next power of two ("k-overfetch"): a top-8 answer serves every
  ``k <= 8`` query of the same shape by truncation, so mixed-k workloads
  share cache entries instead of fragmenting them.  Overfetch is cheap
  — the stop depth grows sublinearly in ``k`` — and bounded by
  ``ServicePolicy.max_overfetch``.

Predicted stop positions use the observed data: TA stops at the first
position ``p`` where the k-th best overall score reaches the threshold
``scoring(last scores at p)``; both sides are precomputed once per
(database, scoring) pair in :class:`ListStatistics`, so the estimate is
a binary search, not a simulation.  (It is a lower bound — TA's running
top-k can lag the true top-k — which is fine for *ranking* candidate
algorithms that all share the bias.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.algorithms.base import get_algorithm
from repro.analysis.model import expected_best_position_advance
from repro.bench.batch import QuerySpec
from repro.columnar import ColumnarDatabase
from repro.errors import InvalidQueryError
from repro.exec.keys import freeze_value, scoring_key
from repro.scoring import SUM, ScoringFunction
from repro.service.sharding import available_cpus
from repro.types import AccessTally, CostModel

if TYPE_CHECKING:
    from repro.service.feedback import PlanFeedback

#: Algorithms the auto-planner ranks by predicted cost.  NRA is excluded
#: — it only wins when random access is impossible, which is a policy
#: fact, not a cost estimate.
AUTO_CANDIDATES = ("ta", "bpa", "bpa2")

#: Algorithms with a distributed driver over the simulated network.
NETWORK_ALGORITHMS = frozenset({"ta", "bpa", "bpa2"})

#: Rough per-message envelope overhead (kind string + framing) and
#: per-access payload bytes used by the network-cost predictions.
_MESSAGE_OVERHEAD_BYTES = 16.0
_ACCESS_PAYLOAD_BYTES = 24.0


@dataclass(frozen=True)
class ServicePolicy:
    """Knobs governing planning decisions.

    Args:
        allow_random: whether the sources support random access.  When
            ``False`` every query is planned as NRA (the paper's
            sorted-access-only regime, e.g. web sources streaming ranked
            results).
        overfetch: whether to round ``k`` up to a power-of-two bucket
            when caching is enabled, so queries differing only in ``k``
            share cache entries.
        max_overfetch: upper bound on ``k_fetch / k`` (the power-of-two
            bucketing never exceeds 2; the knob exists so a custom
            bucketing cannot run away).
        wire_protocol: wire protocol for networked queries — ``"auto"``
            picks the one minimizing the cost model's network cost
            (ties to batch), or force ``"entry"`` / ``"batch"`` /
            ``"pipelined"`` (pipelined ships exactly the batched
            messages as overlapped waves, so the message/byte model
            cannot distinguish them; forcing it trades nothing and wins
            wall-clock on real fabrics).
        block_width: sorted/direct block width for networked queries
            (``1`` = the classic per-entry round structure; wider blocks
            run the ``*-block`` round planners).
        owners: owner-process count for networked queries (``0`` keeps
            one owner per list).  With fewer owners than lists the
            transport co-locates lists per
            :class:`repro.distributed.placement.ClusterPlacement` and
            coalesces each round wave into one frame per owner — the
            planner's message model scales with the owner count
            accordingly.
        placement: list-to-owner assignment strategy when ``owners`` is
            set (``"contiguous"`` or ``"striped"``).
        delta_log_depth: how many mutations the service's
            :class:`repro.dynamic.MutationLog` retains for delta-aware
            cache reuse.  Cache entries older than the log's retention
            window degrade to plain misses (never to stale serves);
            ``0`` disables the log entirely — every epoch change is a
            whole-epoch miss, the pre-delta behavior.
        delta_patch_limit: largest number of touched objects the cache
            may re-score (``lookup_many``) to *patch* an entry in
            place; deltas touching more fall through to recomputation.
        snapshot_patch_budget: largest number of net-touched *items* a
            snapshot refresh may apply as an in-place columnar patch
            (:func:`repro.columnar.patch_database`); wider deltas — or
            any window the mutation log cannot prove — fall back to a
            cold rebuild from the dynamic source.  ``0`` disables
            patching entirely (every refresh rebuilds, the pre-patch
            behavior).
        max_subscriptions: most standing queries
            (:meth:`repro.service.QueryService.watch`) concurrently
            live; registration beyond it raises
            :class:`~repro.errors.ServiceError` (every mutation is
            classified against every live subscription, so the cap
            bounds per-mutation maintenance work).
        watch_patch_limit: largest number of touched items one
            subscription maintenance step may re-score in place;
            wider deltas recompute through the service.
        reverse_boundary_limit: most per-user boundary entries the
            reverse top-k engine
            (:meth:`repro.service.QueryService.submit_reverse`) caches
            and maintains under the mutation stream; beyond it the
            least-recently consulted users re-run their certified
            top-k on next touch.  ``0`` disables the boundary cache.
        adaptive: close the control loop
            (:mod:`repro.service.feedback`): calibrate predicted costs
            with observed latencies, tune ``block_width`` online per
            transport, and watch the workload for drift.  Answers are
            bit-identical either way — adaptation only moves which
            exact plan runs.
        feedback_blend: weight of the observation when blending with
            the static prediction (``CostModel.calibrate``).
        feedback_min_samples: observations an arm needs before it
            participates in calibrated selection.
        feedback_tolerance: hysteresis band — a challenger must beat
            the incumbent's calibrated cost by this fraction to take
            over, and an observation must diverge from its prediction
            by more than it to invalidate memoized plans.
        drift_window: queries per drift-detection window.
        drift_threshold: total-variation distance between consecutive
            windows that declares a drift epoch.
    """

    allow_random: bool = True
    overfetch: bool = True
    max_overfetch: int = 4
    transport: str = "auto"  #: ``"auto"`` | ``"local"`` | ``"network"``
    wire_protocol: str = "auto"
    block_width: int = 1
    owners: int = 0
    placement: str = "contiguous"
    delta_log_depth: int = 256
    delta_patch_limit: int = 8
    snapshot_patch_budget: int = 64
    max_subscriptions: int = 64
    watch_patch_limit: int = 8
    reverse_boundary_limit: int = 1024
    adaptive: bool = False
    feedback_blend: float = 0.5
    feedback_min_samples: int = 5
    feedback_tolerance: float = 0.25
    drift_window: int = 32
    drift_threshold: float = 0.6

    def __post_init__(self) -> None:
        # Validated here, not at first use: a typo'd transport would
        # otherwise surface mid-workload (or never, when no query
        # qualifies for a transport decision at all).
        if self.transport not in ("auto", "local", "network"):
            raise ValueError(
                f"unknown transport policy {self.transport!r}; "
                "expected 'auto', 'local' or 'network'"
            )
        if self.wire_protocol not in ("auto", "entry", "batch", "pipelined"):
            raise ValueError(
                f"unknown wire protocol policy {self.wire_protocol!r}; "
                "expected 'auto', 'entry', 'batch' or 'pipelined'"
            )
        if self.block_width < 1:
            raise ValueError(
                f"block_width must be >= 1, got {self.block_width}"
            )
        if self.owners < 0:
            raise ValueError(f"owners must be >= 0, got {self.owners}")
        if self.placement not in ("contiguous", "striped"):
            raise ValueError(
                f"unknown placement policy {self.placement!r}; "
                "expected 'contiguous' or 'striped'"
            )
        if self.delta_log_depth < 0:
            raise ValueError(
                f"delta_log_depth must be >= 0, got {self.delta_log_depth}"
            )
        if self.delta_patch_limit < 0:
            raise ValueError(
                f"delta_patch_limit must be >= 0, got {self.delta_patch_limit}"
            )
        if self.snapshot_patch_budget < 0:
            raise ValueError(
                "snapshot_patch_budget must be >= 0, "
                f"got {self.snapshot_patch_budget}"
            )
        if self.max_subscriptions < 0:
            raise ValueError(
                f"max_subscriptions must be >= 0, got {self.max_subscriptions}"
            )
        if self.watch_patch_limit < 0:
            raise ValueError(
                f"watch_patch_limit must be >= 0, got {self.watch_patch_limit}"
            )
        if self.reverse_boundary_limit < 0:
            raise ValueError(
                "reverse_boundary_limit must be >= 0, "
                f"got {self.reverse_boundary_limit}"
            )
        if not 0.0 <= self.feedback_blend <= 1.0:
            raise ValueError(
                f"feedback_blend must be in [0, 1], got {self.feedback_blend}"
            )
        if self.feedback_min_samples < 1:
            raise ValueError(
                "feedback_min_samples must be >= 1, "
                f"got {self.feedback_min_samples}"
            )
        if self.feedback_tolerance < 0.0:
            raise ValueError(
                "feedback_tolerance must be >= 0, "
                f"got {self.feedback_tolerance}"
            )
        if self.drift_window < 2:
            raise ValueError(
                f"drift_window must be >= 2, got {self.drift_window}"
            )
        if not 0.0 < self.drift_threshold <= 1.0:
            raise ValueError(
                "drift_threshold must be in (0, 1], "
                f"got {self.drift_threshold}"
            )


@dataclass(frozen=True)
class PlanDecision:
    """The planner's verdict for one query."""

    algorithm: str  #: resolved algorithm registry name
    backend: str  #: ``"kernel"`` or ``"reference"``
    k_requested: int  #: k after clamping to the database size
    k_fetch: int  #: k actually executed/cached (>= k_requested)
    predicted_costs: Mapping[str, float] = field(default_factory=dict)
    reason: str = ""
    #: ``"local"`` (shard pool) or ``"network-entry"`` / ``"network-batch"``
    #: (simulated network under the named wire protocol).
    transport: str = "local"

    @property
    def overfetched(self) -> bool:
        """Whether the executed k exceeds the requested k."""
        return self.k_fetch > self.k_requested


class ListStatistics:
    """Observed statistics of one (database, scoring) pair.

    Holds the sorted overall-score distribution and exposes the
    per-position sorted-access threshold, the two ingredients of the
    data-driven TA stop estimate.  Built once per scoring function and
    reused by every plan.
    """

    __slots__ = ("_scoring", "_n", "_m", "_totals_desc", "_score_arrays")

    def __init__(
        self, database: ColumnarDatabase, scoring: ScoringFunction
    ) -> None:
        self._scoring = scoring
        self._n = database.n
        self._m = database.m
        totals = np.asarray(database.overall_scores(scoring), dtype=np.float64)
        self._totals_desc = np.sort(totals)[::-1]
        self._score_arrays = [lst.scores_array for lst in database.lists]

    @property
    def n(self) -> int:
        """Number of items."""
        return self._n

    @property
    def m(self) -> int:
        """Number of lists."""
        return self._m

    def kth_total(self, k: int) -> float:
        """The k-th best overall score in the database."""
        if not 1 <= k <= self._n:
            raise InvalidQueryError(f"k must be in 1..{self._n}, got {k}")
        return float(self._totals_desc[k - 1])

    def threshold_at(self, position: int) -> float:
        """TA's threshold after ``position`` rounds of sorted access."""
        if not 1 <= position <= self._n:
            raise InvalidQueryError(
                f"position must be in 1..{self._n}, got {position}"
            )
        return self._scoring(
            [float(arr[position - 1]) for arr in self._score_arrays]
        )

    def stop_depth_for_target(self, target: float) -> int:
        """Smallest position whose threshold has dropped to ``target``.

        The threshold is non-increasing in the position (lists are score
        descending), so binary search applies; returns ``n`` when the
        threshold never reaches the target (run to exhaustion).
        """
        low, high = 1, self._n
        if self.threshold_at(high) > target:
            return self._n
        while low < high:
            mid = (low + high) // 2
            if self.threshold_at(mid) <= target:
                high = mid
            else:
                low = mid + 1
        return low

    def ta_stop_estimate(self, k: int) -> int:
        """Smallest position where the k-th overall score meets the
        threshold (a data-driven lower bound on TA's stop position).
        """
        return self.stop_depth_for_target(self.kth_total(k))


@dataclass(frozen=True)
class ShardDecision:
    """The auto-tuner's verdict on how many shards to partition into."""

    shards: int
    pool: str  #: the resolved pool kind the prediction assumed
    workers: int  #: parallel workers the prediction assumed
    predicted_costs: Mapping[int, float] = field(default_factory=dict)
    reason: str = ""


class QueryPlanner:
    """Plans queries for one database under one policy and cost model."""

    def __init__(
        self,
        database: ColumnarDatabase,
        *,
        policy: ServicePolicy | None = None,
        cost_model: CostModel | None = None,
        feedback: "PlanFeedback | None" = None,
    ) -> None:
        self._database = database
        self._policy = policy or ServicePolicy()
        self._model = cost_model or CostModel.paper(max(2, database.n))
        self._feedback = feedback
        self._overfetch_override: bool | None = None
        self._statistics: dict[tuple, ListStatistics] = {}
        #: Plans are deterministic per planner, so memoize by normalized
        #: spec — a cache *hit* in the service must not re-pay the
        #: stop-position estimation on its hot path.  With feedback
        #: attached, each memo entry carries the feedback generation it
        #: was computed under and is recomputed once evidence moves.
        self._plans: dict[tuple, tuple[PlanDecision, int]] = {}

    @property
    def policy(self) -> ServicePolicy:
        """The active planning policy."""
        return self._policy

    @property
    def cost_model(self) -> CostModel:
        """The cost model predictions are expressed in."""
        return self._model

    @property
    def feedback(self) -> "PlanFeedback | None":
        """The runtime feedback store, when adaptive planning is on."""
        return self._feedback

    @property
    def overfetch_override(self) -> bool | None:
        """Drift-tuned overfetch override (``None`` = policy default)."""
        return self._overfetch_override

    def set_overfetch_override(self, value: bool | None) -> None:
        """Override the policy's overfetch knob online (drift re-tune).

        Clears the plan memo — the bucketed ``k`` feeding every memoized
        decision just changed.
        """
        if value != self._overfetch_override:
            self._overfetch_override = value
            self._plans.clear()

    def statistics(self, scoring: ScoringFunction) -> ListStatistics:
        """The (cached) observed statistics for a scoring function."""
        key = scoring_key(scoring)
        stats = self._statistics.get(key)
        if stats is None:
            stats = ListStatistics(self._database, scoring)
            self._statistics[key] = stats
        return stats

    def bucketed_k(self, k: int, *, cache_enabled: bool) -> int:
        """The k to execute: the next power of two, bounded by ``n`` and
        the policy's overfetch cap; ``k`` itself when not caching."""
        overfetch = (
            self._policy.overfetch
            if self._overfetch_override is None
            else self._overfetch_override
        )
        if not cache_enabled or not overfetch:
            return k
        bucket = 1 << (k - 1).bit_length() if k > 0 else 1
        bucket = min(bucket, k * self._policy.max_overfetch)
        return min(bucket, self._database.n)

    def predicted_tallies(
        self, k: int, scoring: ScoringFunction
    ) -> dict[str, AccessTally]:
        """Predicted access tallies per candidate algorithm for one k."""
        n, m = self._database.n, self._database.m
        stats = self.statistics(scoring)
        p_ta = stats.ta_stop_estimate(k)
        advance = expected_best_position_advance(n, m, p_ta)
        if advance == float("inf"):
            advance = float(n)
        p_bpa = max(1, p_ta - int(round(advance)))
        # Fraction of items seen after p_bpa rounds (rank <= p in >= 1 list).
        seen_fraction = 1.0 - (1.0 - p_bpa / n) ** m
        new_items = max(1, int(round(n * seen_fraction)))
        return {
            # Paper accounting: m sorted accesses per round, m-1 randoms each.
            "ta": AccessTally(sorted=m * p_ta, random=m * p_ta * (m - 1)),
            "bpa": AccessTally(sorted=m * p_bpa, random=m * p_bpa * (m - 1)),
            # BPA2 pays direct accesses and completes each distinct item once.
            "bpa2": AccessTally(direct=m * p_bpa, random=(m - 1) * new_items),
            # NRA never leaves sorted access but re-derives bounds for every
            # seen item each round — the min(m*p, n) term is that CPU cost
            # expressed in sorted-access units, which prices NRA out unless
            # random access is impossible.
            "nra": AccessTally(sorted=m * p_ta + p_ta * min(m * p_ta, n)),
        }

    def predicted_costs(
        self, k: int, scoring: ScoringFunction
    ) -> dict[str, float]:
        """Predicted execution cost per candidate algorithm for one k."""
        return {
            name: self._model.execution_cost(tally)
            for name, tally in self.predicted_tallies(k, scoring).items()
        }

    def predicted_network(
        self, algorithm: str, k: int, scoring: ScoringFunction
    ) -> dict[str, dict[str, float]]:
        """Predicted wire traffic per protocol for one networked query.

        Per-entry RPC pays two messages per access; the batched protocol
        coalesces a round's lookups per owner (four messages per owner
        per round — one owner per list unless the policy's ``owners``
        knob co-locates lists, in which case each wave is one frame per
        owner *process* and the message model scales with the owner
        count, not the list count).  Bytes are estimated from the access
        payloads plus a per-message envelope — rough, but ranked the
        same way the measured numbers come out (``repro dist-bench``).
        """
        if algorithm not in NETWORK_ALGORITHMS:
            raise InvalidQueryError(
                f"no distributed driver for {algorithm!r}; "
                f"networked algorithms: {sorted(NETWORK_ALGORITHMS)}"
            )
        tally = self.predicted_tallies(k, scoring)[algorithm]
        m = self._database.m
        owners = m if self._policy.owners <= 0 else min(m, self._policy.owners)
        rounds = max(1, (tally.sorted + tally.direct) // max(1, m))
        # Wider blocks coalesce whole rounds into each message wave; a
        # partial final block still costs one wave, hence the ceiling.
        block_rounds = max(
            1, math.ceil(rounds / max(1, self._policy.block_width))
        )
        payload = tally.total * _ACCESS_PAYLOAD_BYTES
        entry_messages = 2 * tally.total
        batch_messages = 4 * owners * block_rounds
        batched = {
            "messages": batch_messages,
            "bytes": payload + batch_messages * _MESSAGE_OVERHEAD_BYTES,
        }
        return {
            "entry": {
                "messages": entry_messages,
                "bytes": payload + entry_messages * _MESSAGE_OVERHEAD_BYTES,
            },
            "batch": batched,
            # Pipelining overlaps the batched waves: identical messages
            # and bytes, lower wall-clock (which this byte-denominated
            # model cannot see — the policy's wire_protocol selects it).
            "pipelined": dict(batched),
        }

    def choose_transport(
        self, algorithm: str, k: int, scoring: ScoringFunction
    ) -> tuple[str, str]:
        """Resolve the policy's transport setting for one query.

        Returns ``(transport, reason)``.  Under ``"network"`` the wire
        protocol is the one minimizing the cost model's network cost
        (ties go to batch, which never ships more than per-entry).
        Under ``"auto"`` the decision is the sign of the wire
        *surcharge*: the simulated network runs the same unified
        drivers as local execution, so its total is the local cost plus
        :meth:`repro.types.CostModel.network_cost` — network wins only
        under a cost model that prices the wire negatively, i.e. one
        modeling data that is already remote, where local access
        carries the transfer penalty instead.
        """
        setting = self._policy.transport
        if setting == "local" or algorithm not in NETWORK_ALGORITHMS:
            return "local", "transport: local shard pool"
        wire = self.predicted_network(algorithm, k, scoring)
        model = self._model
        if self._policy.wire_protocol != "auto":
            protocol = self._policy.wire_protocol
        else:
            protocol = min(
                ("batch", "entry"),
                key=lambda name: model.network_cost(
                    wire[name]["messages"], wire[name]["bytes"]
                ),
            )
        if setting == "network":
            return (
                f"network-{protocol}",
                f"transport forced to network; {protocol} protocol predicts "
                f"{wire[protocol]['messages']:,.0f} messages",
            )
        surcharge = model.network_cost(
            wire[protocol]["messages"], wire[protocol]["bytes"]
        )
        if surcharge < 0:
            return f"network-{protocol}", "network predicted cheaper"
        return (
            "local",
            f"transport: local (network adds {surcharge:,.0f} predicted cost)",
        )

    def choose_shard_count(
        self,
        *,
        pool: str,
        cpus: int | None = None,
        k: int = 16,
        scoring: ScoringFunction = SUM,
        max_shards: int | None = None,
    ) -> ShardDecision:
        """Pick the shard count minimizing predicted per-query cost.

        The model follows the merge proof's geometry: a shard of
        ``n / S`` items answers top-``k'``, and its ``k'``-th best local
        total sits near the global ``k * S``-th best, so the shard's
        stop depth is the full-list depth for that deeper target,
        divided by ``S``.  Predicted wall cost is that per-shard cost
        times the number of worker *waves* (``ceil(S / workers)`` — a
        serial pool has one worker, so sharding there only adds total
        work), plus a merge term linear in the ``S * k`` merged entries.
        Candidates are powers of two; ties go to fewer shards.
        """
        n, m = self._database.n, self._database.m
        if n == 0:
            return ShardDecision(1, pool, 1, {}, "empty database")
        if cpus is None:
            cpus = available_cpus()
        workers = cpus if pool in ("thread", "process") else 1
        k = min(max(1, k), n)
        limit = min(max_shards or 2 * max(1, cpus), n)
        candidates = [1]
        while candidates[-1] * 2 <= limit:
            candidates.append(candidates[-1] * 2)

        stats = self.statistics(scoring)
        model = self._model
        costs: dict[int, float] = {}
        for shards in candidates:
            target = stats.kth_total(min(n, k * shards))
            depth = math.ceil(stats.stop_depth_for_target(target) / shards)
            per_shard = model.execution_cost(
                AccessTally(sorted=m * depth, random=m * depth * (m - 1))
            )
            waves = math.ceil(shards / workers)
            merge = shards * k * model.sorted_cost
            costs[shards] = waves * per_shard + merge
        best = min(candidates, key=lambda s: (costs[s], s))
        return ShardDecision(
            shards=best,
            pool=pool,
            workers=workers,
            predicted_costs=costs,
            reason=(
                f"min predicted cost over S in {candidates} "
                f"({workers} worker(s), k={k}): {costs[best]:,.0f}"
            ),
        )

    def plan(self, spec: QuerySpec, *, cache_enabled: bool) -> PlanDecision:
        """Resolve one query spec into an executable decision.

        ``spec.algorithm`` may be a registry name (honored as-is, except
        that a random-access algorithm under a no-random-access policy
        raises :class:`InvalidQueryError`) or ``"auto"`` (cheapest
        predicted candidate).  ``spec.k`` larger than the database is
        clamped to ``n``.
        """
        n = self._database.n
        if spec.k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {spec.k}")
        k_requested = min(spec.k, n)
        memo_key = (
            spec.algorithm,
            k_requested,
            scoring_key(spec.scoring),
            freeze_value(dict(spec.options)),
            cache_enabled,
        )
        generation = (
            self._feedback.generation if self._feedback is not None else 0
        )
        memoized = self._plans.get(memo_key)
        if memoized is not None and memoized[1] == generation:
            return memoized[0]
        k_fetch = self.bucketed_k(k_requested, cache_enabled=cache_enabled)
        costs = self.predicted_costs(k_fetch, spec.scoring)

        if not self._policy.allow_random:
            if spec.algorithm not in ("auto", "nra"):
                # The policy says the sources cannot answer random
                # accesses, so an explicitly requested random-access
                # algorithm is unsatisfiable — refuse rather than
                # silently substitute one with different score semantics.
                raise InvalidQueryError(
                    f"algorithm {spec.algorithm!r} needs random access, "
                    "which this service's policy disallows "
                    "(use 'nra' or 'auto')"
                )
            algorithm = "nra"
            reason = "policy forbids random access; NRA is the only option"
        elif spec.algorithm != "auto":
            algorithm = spec.algorithm
            reason = "algorithm requested explicitly"
        elif self._feedback is not None:
            from repro.service.feedback import plan_signature

            signature = plan_signature(spec.scoring, k_fetch)
            explore = self._feedback.explore_candidate(
                AUTO_CANDIDATES, signature=signature
            )
            if explore is not None:
                algorithm = explore
                reason = (
                    f"exploring {explore} (arm below "
                    f"{self._feedback.min_samples} samples)"
                )
            else:
                calibrated = self._feedback.calibrated_costs(
                    {name: costs[name] for name in AUTO_CANDIDATES},
                    signature=signature,
                    model=self._model,
                )
                algorithm, _replanned, why = self._feedback.select(
                    AUTO_CANDIDATES, calibrated, signature=signature
                )
                reason = (
                    f"calibrated cost {calibrated[algorithm]:,.0f} "
                    f"({why})"
                )
        else:
            algorithm = min(AUTO_CANDIDATES, key=lambda name: costs[name])
            reason = (
                f"min predicted cost among {'/'.join(AUTO_CANDIDATES)} "
                f"({costs[algorithm]:,.0f})"
            )

        if algorithm == "nra":
            # NRA ranks by lower-bound scores: only the full returned set
            # is exact, so a k_fetch prefix is NOT the top-k_requested.
            # Overfetch is unsound here — fetch exactly what was asked.
            k_fetch = k_requested

        transport = "local"
        if (
            algorithm in NETWORK_ALGORITHMS
            and self._policy.transport != "local"
        ):
            if spec.options:
                # The distributed drivers run default configs only, so
                # option-carrying queries stay on the shard pool — say
                # so when the policy explicitly forced the network.
                if self._policy.transport == "network":
                    reason = (
                        f"{reason}; transport: local (options pin the "
                        "query to the shard pool)"
                    )
            else:
                transport, transport_reason = self.choose_transport(
                    algorithm, k_fetch, spec.scoring
                )
                if transport != "local":
                    reason = f"{reason}; {transport_reason}"

        instance = get_algorithm(algorithm, **dict(spec.options))
        backend = "kernel" if instance.fast_kernel() is not None else "reference"
        decision = PlanDecision(
            algorithm=algorithm,
            backend=backend,
            k_requested=k_requested,
            k_fetch=k_fetch,
            predicted_costs=costs,
            reason=reason,
            transport=transport,
        )
        self._plans[memo_key] = (decision, generation)
        return decision
