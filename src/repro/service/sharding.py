"""Row-wise sharding of a columnar database with an exact top-k merge.

**Partitioning.**  Items are split into ``S`` disjoint contiguous
id-ranges; each shard is a self-contained :class:`ColumnarDatabase`
(every item keeps its global id and its local scores, each shard list is
re-laid-out canonically).  Partitioning is by *item*, not by position,
so every algorithm runs on a shard unchanged.

**The merge.**  Fan-in goes through the execution core's
certificate-checked exact merge — see :mod:`repro.exec.merge` for the
exactness proof and the threshold-style certificate it verifies on
every merge (:func:`merge_shard_results` is re-exported here).
Per-shard answers must carry exact overall scores, which is why NRA —
whose reported scores are lower *bounds* — is executed unsharded; see
:data:`MERGE_EXACT_ALGORITHMS`.

**Execution pools.**  ``serial`` runs shards inline (deterministic,
zero overhead — the default for tests), ``thread`` uses one shared
``ThreadPoolExecutor`` (useful when a list backend releases the GIL),
``process`` pins one single-worker ``ProcessPoolExecutor`` per shard so
each worker holds its shard's columns and query contexts for its whole
life — queries ship only ``(algorithm, k, scoring)`` over IPC.
``auto`` picks ``process`` on multi-core hosts and ``serial`` on a
single CPU, where fan-out cannot buy wall-clock time.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Mapping

from repro.columnar import ColumnarDatabase, ColumnarList
from repro.errors import InvalidQueryError
from repro.exec.merge import merge_shard_results
from repro.exec.run import execute_query
from repro.scoring import ScoringFunction
from repro.types import TopKResult

#: Algorithms whose results carry exact overall scores for every
#: returned item — the precondition of the merge proof.  NRA reports
#: lower bounds, so it bypasses sharding and runs on the full database.
MERGE_EXACT_ALGORITHMS = frozenset(
    {"ta", "bpa", "bpa2", "fa", "naive", "qc",
     "ta-block", "bpa-block", "bpa2-block"}
)

__all__ = [
    "MERGE_EXACT_ALGORITHMS",
    "POOL_KINDS",
    "ShardExecutor",
    "merge_shard_results",
    "partition_database",
    "resolve_pool",
]

POOL_KINDS = ("serial", "thread", "process", "auto")


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported).

    The one source of host parallelism for both the pool resolver and
    the planner's shard auto-tuner, so the two cannot disagree.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def resolve_pool(pool: str) -> str:
    """Resolve ``"auto"`` to a concrete pool kind for this host."""
    if pool not in POOL_KINDS:
        raise ValueError(f"unknown pool {pool!r}; expected one of {POOL_KINDS}")
    if pool != "auto":
        return pool
    return "process" if available_cpus() > 1 else "serial"


def partition_database(
    database: ColumnarDatabase, shards: int
) -> list[ColumnarDatabase]:
    """Split a database into ``shards`` disjoint item-range shards.

    The shard count is clamped so every shard holds at least one item.
    Shard boundaries follow ascending item id (``uids_array`` order);
    each shard's lists are rebuilt in the canonical layout from slices
    of the full score matrix.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    n = database.n
    effective = max(1, min(shards, n))
    if effective == 1:
        return [database]
    uids = database.uids_array
    matrix = database.score_matrix()
    result: list[ColumnarDatabase] = []
    for index in range(effective):
        low = index * n // effective
        high = (index + 1) * n // effective
        ids = uids[low:high]
        lists = [
            ColumnarList.from_arrays(
                ids, matrix[i, low:high], name=database.lists[i].name
            )
            for i in range(database.m)
        ]
        result.append(ColumnarDatabase(lists))
    return result


# ----------------------------------------------------------------------
# Process-pool worker state: one shard database per dedicated worker.
# ----------------------------------------------------------------------

_WORKER_DATABASE: ColumnarDatabase | None = None
_WORKER_CONTEXTS: dict = {}


def _worker_init(database: ColumnarDatabase) -> None:
    global _WORKER_DATABASE, _WORKER_CONTEXTS
    _WORKER_DATABASE = database
    _WORKER_CONTEXTS = {}


def _worker_run(
    algorithm: str,
    options: Mapping[str, object],
    k: int,
    scoring: ScoringFunction,
) -> TopKResult:
    assert _WORKER_DATABASE is not None, "shard worker used before init"
    return execute_query(
        _WORKER_DATABASE, _WORKER_CONTEXTS, algorithm, options, k, scoring
    )


class ShardExecutor:
    """Executes one logical top-k query as per-shard queries + merge.

    Args:
        database: the full database (any backend; converted to columnar).
        shards: requested shard count (clamped to the item count).
        pool: ``"serial"`` | ``"thread"`` | ``"process"`` | ``"auto"``.
    """

    def __init__(
        self,
        database,
        *,
        shards: int = 1,
        pool: str = "auto",
    ) -> None:
        if not isinstance(database, ColumnarDatabase):
            database = ColumnarDatabase.from_database(database)
        self._shards_requested = shards
        self._database = database
        self._shard_dbs = partition_database(database, shards)
        self._pool_kind = resolve_pool(pool)
        #: (shard index | -1 for the full database, scoring key) -> context
        self._contexts: dict[int, dict] = {}
        self._context_lock = threading.Lock()
        self._thread_pool: ThreadPoolExecutor | None = None
        self._process_pools: list[ProcessPoolExecutor] | None = None
        self._closed = False
        self._open_pools()

    def _open_pools(self) -> None:
        if len(self._shard_dbs) > 1:
            if self._pool_kind == "thread":
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=len(self._shard_dbs),
                    thread_name_prefix="repro-shard",
                )
            elif self._pool_kind == "process":
                # The shard is shipped through a submitted _worker_init
                # rather than initargs: initargs are pinned inside the
                # pool for its whole life, which would keep a stale
                # snapshot copy alive after every reload().  Each pool
                # has exactly one worker, so the submitted init is
                # guaranteed to run on it before any query task.
                self._process_pools = [
                    ProcessPoolExecutor(max_workers=1)
                    for _ in self._shard_dbs
                ]
                for pool, shard_db in zip(self._process_pools, self._shard_dbs):
                    pool.submit(_worker_init, shard_db).result()

    def reload(self, database, *, shards: int | None = None) -> None:
        """Swap in a new snapshot of the data, keeping pools warm.

        Re-partitions and clears the query-context caches.  When the
        effective shard count is unchanged, dedicated process workers
        are *re-initialized in place* (each single-worker pool runs
        ``_worker_init`` with its new shard) instead of being respawned,
        so a mutate-then-query cycle pays one IPC round-trip per shard,
        not a process start.  A changed shard count (including a new
        ``shards`` request, e.g. from the planner's auto-tuner) falls
        back to a pool restart.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        if shards is not None:
            self._shards_requested = shards
        if not isinstance(database, ColumnarDatabase):
            database = ColumnarDatabase.from_database(database)
        new_shard_dbs = partition_database(database, self._shards_requested)
        self._database = database
        self._contexts.clear()
        same_count = len(new_shard_dbs) == len(self._shard_dbs)
        self._shard_dbs = new_shard_dbs
        if same_count:
            if self._process_pools is not None:
                # Each pool has exactly one worker, so a submitted
                # _worker_init necessarily runs on it.
                for pool, shard_db in zip(self._process_pools, new_shard_dbs):
                    pool.submit(_worker_init, shard_db).result()
            return
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._process_pools is not None:
            for pool in self._process_pools:
                pool.shutdown(wait=True)
            self._process_pools = None
        self._open_pools()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def database(self) -> ColumnarDatabase:
        """The full (unsharded) database."""
        return self._database

    @property
    def shards(self) -> int:
        """Effective shard count."""
        return len(self._shard_dbs)

    @property
    def pool_kind(self) -> str:
        """The resolved pool kind."""
        return self._pool_kind

    @property
    def shard_databases(self) -> tuple[ColumnarDatabase, ...]:
        """The shard databases (the full database when unsharded)."""
        return tuple(self._shard_dbs)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _local_contexts(self, index: int) -> dict:
        # submit_async runs queries on worker threads; the lock keeps
        # concurrent first-touches of one shard's context dict single.
        with self._context_lock:
            contexts = self._contexts.get(index)
            if contexts is None:
                contexts = {}
                self._contexts[index] = contexts
        return contexts

    def _run_local(self, index, database, algorithm, options, k, scoring):
        return execute_query(
            database,
            self._local_contexts(index),
            algorithm,
            options,
            k,
            scoring,
        )

    def fanout_for(self, algorithm: str) -> int:
        """How many shards a query for ``algorithm`` fans out to."""
        if algorithm in MERGE_EXACT_ALGORITHMS:
            return len(self._shard_dbs)
        return 1

    def run(
        self,
        algorithm: str,
        options: Mapping[str, object],
        k: int,
        scoring: ScoringFunction,
    ) -> TopKResult:
        """Answer one top-k query exactly, fanning out where provable."""
        if self._closed:
            raise RuntimeError("executor is closed")
        if k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {k}")
        k = min(k, self._database.n)

        if self.fanout_for(algorithm) == 1:
            result = self._run_local(
                -1, self._database, algorithm, options, k, scoring
            )
            extras = dict(result.extras)
            extras.setdefault("shards", 1)
            return TopKResult(
                items=result.items,
                tally=result.tally,
                rounds=result.rounds,
                stop_position=result.stop_position,
                algorithm=result.algorithm,
                extras=extras,
            )

        shard_ks = [min(k, db.n) for db in self._shard_dbs]
        if self._process_pools is not None:
            futures = [
                pool.submit(_worker_run, algorithm, dict(options), k_s, scoring)
                for pool, k_s in zip(self._process_pools, shard_ks)
            ]
            partials = [future.result() for future in futures]
        elif self._thread_pool is not None:
            futures = [
                self._thread_pool.submit(
                    self._run_local, s, db, algorithm, options, k_s, scoring
                )
                for s, (db, k_s) in enumerate(zip(self._shard_dbs, shard_ks))
            ]
            partials = [future.result() for future in futures]
        else:
            partials = [
                self._run_local(s, db, algorithm, options, k_s, scoring)
                for s, (db, k_s) in enumerate(zip(self._shard_dbs, shard_ks))
            ]
        return merge_shard_results(
            partials, [db.n for db in self._shard_dbs], k, algorithm
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release pools; the executor cannot run queries afterwards."""
        if self._closed:
            return
        self._closed = True
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
        if self._process_pools is not None:
            for pool in self._process_pools:
                pool.shutdown(wait=True)

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardExecutor shards={self.shards} pool={self._pool_kind} "
            f"n={self._database.n} m={self._database.m}>"
        )
