"""Datagen-driven workload replay and the service speedup benchmark.

A *workload* is a sequence of queries drawn from a pool of distinct
query shapes with Zipf-skewed popularity — the canonical model of
production query traffic, where a few hot queries dominate.  Replaying
one against a :class:`QueryService` exercises every part of the
subsystem at once: the planner sees mixed ``k``, the shard executor sees
every cache miss, and the cache sees the popularity skew it exists for.

:func:`run_workload` replays one configuration and returns a JSON-ready
summary (written under ``reports/service_*.json`` by the
``serve-workload`` CLI).  :func:`speedup_benchmark` measures the
unsharded-vs-sharded x cold-vs-warm grid behind
``reports/service_speedup.json`` and cross-checks that every cached or
sharded answer is identical to the cache-off replay.

**Mutation replay** (``serve-workload --mutation-rate R``): the same
Zipf-popular query stream interleaved with a seeded stream of random
``update``/``insert``/``remove`` mutations against a live
:class:`repro.dynamic.DynamicDatabase` — the workload the delta-aware
result cache exists for.  ``--verify`` cross-checks every served answer
(hit, revalidated, patched or fresh) against a brute-force ranking of
the database's *current* state, bit for bit.
:func:`mutation_contrast` replays the identical mutation-heavy stream
under the delta-aware cache and under the legacy whole-epoch scheme
(``delta_log_depth=0``) and backs the ``mutation_workload`` section of
``reports/service_speedup.json``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.algorithms.naive import brute_force_topk
from repro.bench.batch import QuerySpec
from repro.datagen.base import make_generator
from repro.dynamic import DynamicDatabase, DynamicSortedList
from repro.reverse import brute_force_reverse_topk
from repro.service.cache import CACHE_OUTCOMES, scoring_key
from repro.service.planner import ServicePolicy
from repro.service.service import QueryService, ServiceResult
from repro.types import AccessTally


@dataclass(frozen=True)
class WorkloadConfig:
    """One serve-workload run, fully seeded and reproducible."""

    generator: str = "uniform"  #: datagen family for the database
    alpha: float | None = None  #: correlation parameter (correlated only)
    n: int = 10_000
    m: int = 3
    seed: int = 42
    queries: int = 200  #: total replayed queries
    distinct: int = 30  #: size of the distinct query pool
    k_max: int = 20  #: per-query k is drawn uniformly from 1..k_max
    zipf_theta: float = 1.0  #: popularity skew over the query pool
    algorithm: str = "auto"  #: algorithm per query ("auto" = planner)
    shards: int | str = 1  #: shard count, or "auto" for the planner's pick
    pool: str = "auto"
    cache_size: int = 1024  #: 0 disables the cache
    #: popularity skew override for the phased generator (``--key-skew``;
    #: ``None`` falls back to ``zipf_theta``).
    key_skew: float | None = None
    #: probability a query is adversarial — a ``k`` far past the pool's
    #: range (``(k_max, 4*k_max]``), the deep-stop worst case.
    adversarial_ratio: float = 0.0
    #: number of workload phase *shifts*: ``N`` shifts split the stream
    #: into ``N + 1`` phases with alternating k-regimes and fresh query
    #: pools (0 keeps the legacy single-phase stream, byte-identical to
    #: what it always was).
    phase_shift: int = 0
    #: serve through an adaptive service (``ServicePolicy.adaptive``).
    adaptive: bool = False


def build_database(config: WorkloadConfig):
    """The (seeded) database a workload runs against."""
    params = {}
    if config.generator == "correlated" and config.alpha is not None:
        params["alpha"] = config.alpha
    generator = make_generator(config.generator, **params)
    return generator.generate(config.n, config.m, seed=config.seed)


def build_workload(config: WorkloadConfig) -> list[QuerySpec]:
    """Draw the query sequence: a Zipf-popular replay over a spec pool.

    The pool holds ``distinct`` specs with k drawn from ``1..k_max``;
    each replayed query picks a pool entry with probability proportional
    to ``1 / rank**zipf_theta``.  ``zipf_theta = 0`` gives a uniform
    (cache-hostile) workload, larger values concentrate traffic on a
    few hot queries.

    ``phase_shift > 0`` (or a nonzero ``adversarial_ratio`` / an
    explicit ``key_skew``) switches to the *phased* generator: the
    stream splits into ``phase_shift + 1`` contiguous phases, each with
    its own freshly drawn pool, and the k-regime alternates between
    *narrow* (``1..k_max//4`` — shallow stops, tiny rounds) and *deep*
    (``3*k_max//4..k_max`` — long scans) phases.  Each query is
    additionally replaced, with probability ``adversarial_ratio``, by an
    adversarial spec with ``k`` drawn from ``(k_max, 4*k_max]`` — the
    deep-stop worst case no static tuning anticipates.  The legacy
    single-phase stream (all three knobs at their defaults) is
    byte-identical to what this function always produced.
    """
    rng = np.random.default_rng(config.seed + 1)
    theta = (
        config.key_skew if config.key_skew is not None else config.zipf_theta
    )
    phased = (
        config.phase_shift > 0
        or config.adversarial_ratio > 0
        or config.key_skew is not None
    )
    if not phased:
        pool = [
            QuerySpec(
                algorithm=config.algorithm,
                k=int(rng.integers(1, max(2, config.k_max + 1))),
            )
            for _ in range(max(1, config.distinct))
        ]
        ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, max(0.0, config.zipf_theta))
        weights /= weights.sum()
        draws = rng.choice(len(pool), size=max(0, config.queries), p=weights)
        return [pool[index] for index in draws]

    phases = max(1, config.phase_shift + 1)
    total = max(0, config.queries)
    per_phase = -(-total // phases) if total else 0  # ceiling division
    specs: list[QuerySpec] = []
    for phase in range(phases):
        if phase % 2 == 0:
            k_low, k_high = 1, max(1, config.k_max // 4)
        else:
            k_low, k_high = max(1, (3 * config.k_max) // 4), config.k_max
        pool = [
            QuerySpec(
                algorithm=config.algorithm,
                k=int(rng.integers(k_low, k_high + 1)),
            )
            for _ in range(max(1, config.distinct))
        ]
        ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, max(0.0, theta))
        weights /= weights.sum()
        count = min(per_phase, total - len(specs))
        if count <= 0:
            break
        draws = rng.choice(len(pool), size=count, p=weights)
        for index in draws:
            spec = pool[int(index)]
            if (
                config.adversarial_ratio > 0
                and float(rng.random()) < config.adversarial_ratio
            ):
                spec = QuerySpec(
                    algorithm=config.algorithm,
                    k=int(
                        rng.integers(config.k_max + 1, 4 * config.k_max + 1)
                    ),
                )
            specs.append(spec)
    return specs


def replay(
    service: QueryService, workload: Sequence[QuerySpec]
) -> tuple[dict, list[ServiceResult]]:
    """Replay a workload through a service; returns (summary, results)."""
    started = time.perf_counter()
    results = service.submit_many(list(workload))
    seconds = time.perf_counter() - started
    return _summarize(service, results, seconds), results


def replay_async(
    service: QueryService,
    workload: Sequence[QuerySpec],
    *,
    concurrency: int = 8,
) -> tuple[dict, list[ServiceResult]]:
    """Replay a workload through ``gather_many`` on a fresh event loop.

    Same summary shape as :func:`replay` plus the concurrency used and
    the number of coalesced submits.  Answers are identical to the
    serial replay's (single-flight coalescing keeps even the cache-hit
    accounting the same) — ``run_workload`` cross-checks that.
    """
    started = time.perf_counter()
    results = service.serve_concurrently(
        list(workload), concurrency=concurrency
    )
    seconds = time.perf_counter() - started
    summary = _summarize(service, results, seconds)
    summary["concurrency"] = concurrency
    summary["coalesced"] = sum(r.stats.coalesced for r in results)
    return summary, results


def _summarize(
    service: QueryService, results: list[ServiceResult], seconds: float
) -> dict:
    tally = AccessTally()
    plan_mix: dict[str, int] = {}
    backend_mix: dict[str, int] = {}
    outcome_mix = {outcome: 0 for outcome in CACHE_OUTCOMES}
    hits = 0
    latencies = sorted(r.stats.seconds for r in results) or [0.0]
    max_fanout = 1
    for served in results:
        stats = served.stats
        tally = tally + stats.tally
        hits += stats.cache_hit
        outcome_mix[stats.cache_outcome] += 1
        plan_mix[stats.plan.algorithm] = plan_mix.get(stats.plan.algorithm, 0) + 1
        backend_mix[stats.plan.backend] = (
            backend_mix.get(stats.plan.backend, 0) + 1
        )
        max_fanout = max(max_fanout, stats.fanout)

    def percentile(fraction: float) -> float:
        index = min(len(latencies) - 1, int(fraction * len(latencies)))
        return latencies[index]

    summary = {
        "queries": len(results),
        "seconds": seconds,
        "queries_per_second": len(results) / seconds if seconds > 0 else 0.0,
        "cache_hits": hits,
        "cache_hit_rate": hits / len(results) if results else 0.0,
        "cache_outcomes": outcome_mix,
        "plan_mix": plan_mix,
        "backend_mix": backend_mix,
        "shards": service.shards,
        "max_fanout": max_fanout,
        "accesses": {
            "sorted": tally.sorted,
            "random": tally.random,
            "direct": tally.direct,
        },
        "latency_ms": {
            "p50": percentile(0.50) * 1e3,
            "p95": percentile(0.95) * 1e3,
            "max": latencies[-1] * 1e3,
        },
    }
    return summary


def _served_answers(results: Sequence[ServiceResult]) -> list[tuple]:
    return [(r.item_ids, r.scores) for r in results]


def _adaptive_summary(service: QueryService) -> dict | None:
    """The JSON-ready adaptive section of a summary (None if static)."""
    state = service.adaptive_state
    if state is None:
        return None
    return {
        "drift_epochs": service.counters.drift_epochs,
        "replans": service.counters.replans,
        "arms": state.feedback.arm_count,
        "plan_generation": state.feedback.generation,
        "width_histogram": {
            str(width): count
            for width, count in state.width_histogram().items()
        },
        "width_adjustments": sum(
            controller.adjustments
            for controller in state.controllers.values()
        ),
        "overfetch_override": state.overfetch_override,
        "last_drift_divergence": state.drift.last_divergence,
    }


# ----------------------------------------------------------------------
# Mutation replay
# ----------------------------------------------------------------------


def dynamic_from(database) -> DynamicDatabase:
    """A mutable copy of a static database (same items, same scores)."""
    return DynamicDatabase(
        [
            DynamicSortedList(zip(lst.items(), lst.scores()), name=lst.name)
            for lst in database.lists
        ]
    )


def fresh_topk(
    source: DynamicDatabase, k: int, scoring
) -> tuple[tuple, tuple]:
    """Brute-force oracle: the exact ranked top-k of the *current* state.

    Delegates to the library's one true oracle
    (:func:`repro.algorithms.naive.brute_force_topk`, which aggregates
    with the very same scoring callable the engine uses), so a correct
    serve matches bit for bit — items, scores, tie-breaks.
    """
    ranked = brute_force_topk(source, k, scoring)
    return (
        tuple(entry.item for entry in ranked),
        tuple(entry.score for entry in ranked),
    )


def answers_match(
    served_ids,
    served_scores,
    source: DynamicDatabase,
    k: int,
    scoring,
    *,
    expected: tuple | None = None,
) -> bool:
    """Whether a served answer is an exact ranked top-k of current data.

    The served *score* sequence must be bit-identical to the oracle's
    (same floats, same descending order), and every served item must
    honestly carry its own current aggregate.  Item *identity* within
    an equal-score tie group is deliberately not pinned: the library's
    equivalence contract (see :meth:`repro.types.TopKResult.same_scores`)
    lets algorithms resolve boundary ties differently — all correctly —
    and which tied item an engine run includes can shift with unrelated
    data changes, so a cache serving either tied answer is exact.
    Wherever scores are untied this degenerates to ids being identical.

    ``expected`` short-circuits the oracle recompute with a precomputed
    :func:`fresh_topk` result — only sound while the source is static.
    """
    expected_ids, expected_scores = (
        expected if expected is not None else fresh_topk(source, k, scoring)
    )
    if tuple(served_scores) != expected_scores:
        return False
    if tuple(served_ids) == expected_ids:
        return True
    if len(set(served_ids)) != len(served_ids):
        return False
    for item, score in zip(served_ids, served_scores):
        try:
            local = source.local_scores(item)
        except Exception:
            return False  # served an item that no longer exists
        if scoring(list(local)) != score:
            return False
    return True


class WorkloadMutator:
    """A seeded stream of random mutations against a dynamic database.

    Kinds are drawn ~70% score updates, ~15% inserts, ~15% removals
    (removals pause while the database is small so the workload's k
    range stays meaningful); scores are drawn uniformly from the initial
    data's observed score range.  The stream depends only on the seed,
    so two services replaying the same workload see byte-identical
    mutation sequences.
    """

    def __init__(self, source: DynamicDatabase, rng: np.random.Generator) -> None:
        self._source = source
        self._rng = rng
        self._ids = sorted(source.item_ids)
        self._next_id = (self._ids[-1] + 1) if self._ids else 0
        scores = [s for lst in source.lists for s in lst.scores()]
        self._low = min(scores, default=0.0)
        self._high = max(scores, default=1.0)
        self._floor = max(4, len(self._ids) // 2)
        self.applied = {"update_score": 0, "insert_item": 0, "remove_item": 0}

    def _draw_score(self) -> float:
        return float(self._rng.uniform(self._low, self._high))

    @property
    def ids(self) -> tuple:
        """The live item ids (insertion order) — for picking query targets."""
        return tuple(self._ids)

    def apply_one(self) -> str:
        """Apply one random mutation; returns its kind."""
        roll = float(self._rng.random())
        if roll < 0.15:
            item = self._next_id
            self._next_id += 1
            self._source.insert_item(
                item, [self._draw_score() for _ in range(self._source.m)]
            )
            self._ids.append(item)
            kind = "insert_item"
        elif roll < 0.30 and len(self._ids) > self._floor:
            index = int(self._rng.integers(len(self._ids)))
            item = self._ids.pop(index)
            self._source.remove_item(item)
            kind = "remove_item"
        else:
            index = int(self._rng.integers(len(self._ids)))
            self._source.update_score(
                int(self._rng.integers(self._source.m)),
                self._ids[index],
                self._draw_score(),
            )
            kind = "update_score"
        self.applied[kind] += 1
        return kind


def replay_with_mutations(
    service: QueryService,
    workload: Sequence[QuerySpec],
    source: DynamicDatabase,
    *,
    mutation_rate: float,
    seed: int,
    verify: bool = False,
    lock=None,
    reverse_rate: float = 0.0,
    reverse_k: int = 10,
) -> tuple[dict, list[ServiceResult]]:
    """Replay a workload with mutations interleaved between queries.

    Before each query a mutation is applied with probability
    ``mutation_rate`` (rates above 1 apply ``floor(rate)`` mutations
    plus a fractional chance of one more).  With ``verify`` every served
    answer — whatever its cache outcome — is checked for exactness
    against the brute-force oracle on the database's current state
    (:func:`answers_match`: bit-identical ranked scores, honest
    per-item aggregates); the summary's ``verified_identical`` records
    the verdict.  Verification runs outside the timed path.

    A positive ``reverse_rate`` additionally issues a reverse top-k
    query (:meth:`QueryService.submit_reverse`, ``k=reverse_k``) on a
    random live item after each forward query with that probability,
    against whatever users the service's ``reverse_registry`` holds;
    with ``verify`` each reverse answer is checked bit-exactly against
    :func:`repro.reverse.brute_force_reverse_topk` and the summary
    gains a ``"reverse"`` section.

    ``lock`` (any context manager, e.g. a
    :attr:`repro.watch.server.WatchServer.lock`) is held around every
    service/database touch, so the replay can drive a service that
    concurrently serves watch connections from other threads.
    """
    if mutation_rate < 0:
        raise ValueError(f"mutation rate must be >= 0, got {mutation_rate}")
    if reverse_rate < 0:
        raise ValueError(f"reverse rate must be >= 0, got {reverse_rate}")
    guard = lock if lock is not None else nullcontext()
    rng = np.random.default_rng(seed + 2)
    mutator = WorkloadMutator(source, rng)
    results: list[ServiceResult] = []
    seconds = 0.0
    mismatches = 0
    reverse_seconds = 0.0
    reverse_queries = reverse_matches = reverse_mismatches = 0
    for spec in workload:
        count = int(mutation_rate)
        if float(rng.random()) < mutation_rate - count:
            count += 1
        for _ in range(count):
            with guard:
                mutator.apply_one()
        started = time.perf_counter()
        with guard:
            served = service.submit(spec)
        seconds += time.perf_counter() - started
        results.append(served)
        if verify:
            with guard:
                matched = answers_match(
                    served.item_ids,
                    served.scores,
                    source,
                    spec.k,
                    spec.scoring,
                )
            if not matched:
                mismatches += 1
        if reverse_rate > 0 and float(rng.random()) < reverse_rate:
            ids = mutator.ids
            item = ids[int(rng.integers(len(ids)))]
            started = time.perf_counter()
            with guard:
                reverse_result = service.submit_reverse(item, reverse_k)
            reverse_seconds += time.perf_counter() - started
            reverse_queries += 1
            reverse_matches += len(reverse_result)
            if verify:
                with guard:
                    expected = brute_force_reverse_topk(
                        source, service.reverse_registry, item, reverse_k
                    )
                if reverse_result.users != expected:
                    reverse_mismatches += 1
    summary = _summarize(service, results, seconds)
    if reverse_queries:
        engine = service.reverse_engine
        counters = engine.counters
        summary["reverse"] = {
            "queries": reverse_queries,
            "k": reverse_k,
            "users": len(service.reverse_registry),
            "matched_users": reverse_matches,
            "seconds": reverse_seconds,
            "bound_in": counters.bound_in,
            "bound_out": counters.bound_out,
            "boundary_hits": counters.boundary_hits,
            "fallbacks": counters.fallbacks,
            "maintenance": {
                "unchanged": counters.maintenance_unchanged,
                "patched": counters.maintenance_patched,
                "dropped": counters.maintenance_dropped,
                "flushes": counters.flushes,
            },
        }
        if verify:
            summary["reverse"]["verified_identical"] = reverse_mismatches == 0
            summary["reverse"]["verify_mismatches"] = reverse_mismatches
    outcomes = summary["cache_outcomes"]
    reused = outcomes["hit"] + outcomes["revalidated"] + outcomes["patched"]
    summary["mutation_rate"] = mutation_rate
    summary["mutations"] = dict(mutator.applied)
    summary["reuse_rate"] = reused / len(results) if results else 0.0
    if verify:
        summary["verified_identical"] = mismatches == 0
        summary["verify_mismatches"] = mismatches
    return summary, results


def mutation_contrast(
    *,
    n: int = 5_000,
    m: int = 3,
    queries: int = 300,
    distinct: int = 30,
    k_max: int = 16,
    zipf_theta: float = 1.0,
    seed: int = 42,
    mutation_rate: float = 1.0,
    generator: str = "uniform",
    verify: bool = True,
) -> dict:
    """Delta-aware vs whole-epoch caching under a mutation-heavy replay.

    The identical query+mutation stream runs twice: once with the
    default delta log and once with ``delta_log_depth=0`` (the legacy
    whole-epoch scheme, where any mutation expires every entry).  Both
    replays are oracle-verified when ``verify`` is set, so the contrast
    is between two *correct* schemes — the delta cache just proves most
    mutations harmless instead of recomputing.
    """
    config = WorkloadConfig(
        generator=generator,
        n=n,
        m=m,
        seed=seed,
        queries=queries,
        distinct=distinct,
        k_max=k_max,
        zipf_theta=zipf_theta,
        shards=1,
        pool="serial",
    )
    base = build_database(config)
    workload = build_workload(config)
    cells: dict[str, dict] = {}
    for label, policy in (
        ("delta_cache", None),
        ("whole_epoch_cache", ServicePolicy(delta_log_depth=0)),
    ):
        source = dynamic_from(base)
        with QueryService(
            source, shards=1, pool="serial", policy=policy
        ) as service:
            summary, _ = replay_with_mutations(
                service,
                workload,
                source,
                mutation_rate=mutation_rate,
                seed=seed,
                verify=verify,
            )
            cache = service.cache
            summary["cache"] = {
                "revalidated": cache.stats.revalidated,
                "patched": cache.stats.patched,
                "invalidations": cache.stats.invalidations,
                "log_truncations": (
                    service.mutation_log.truncations
                    if service.mutation_log is not None
                    else None
                ),
            }
        cells[label] = summary
    delta_rate = cells["delta_cache"]["reuse_rate"]
    legacy_rate = cells["whole_epoch_cache"]["reuse_rate"]
    return {
        "config": {**asdict(config), "mutation_rate": mutation_rate},
        **cells,
        "reuse_rate_delta_vs_whole_epoch": [delta_rate, legacy_rate],
    }


def snapshot_refresh_benchmark(
    *,
    n: int = 5_000,
    m: int = 3,
    epochs: int = 120,
    mutations_per_epoch: int = 4,
    seed: int = 42,
    generator: str = "uniform",
) -> dict:
    """Patched vs cold-rebuild snapshot refresh, same mutation stream.

    Two services over identical dynamic databases replay the identical
    seeded mutation stream; after every burst of ``mutations_per_epoch``
    mutations each refreshes its columnar snapshot — one through the
    default delta-patching path (:func:`repro.columnar.patch_database`),
    one with ``snapshot_patch_budget=0`` (every refresh cold-rebuilds,
    the pre-patch behavior).  Only the refresh itself is timed; query
    execution is excluded.  Both final snapshots are cross-checked
    byte-identical, and a final served answer is compared, so the
    contrast is between two correct refresh strategies.
    """
    config = WorkloadConfig(generator=generator, n=n, m=m, seed=seed)
    base = build_database(config)
    spec = QuerySpec(algorithm="bpa2", k=10)
    cells: dict[str, dict] = {}
    answers: dict[str, tuple] = {}
    snapshots: dict[str, object] = {}
    for label, policy in (
        ("patched", None),
        ("rebuild", ServicePolicy(snapshot_patch_budget=0)),
    ):
        source = dynamic_from(base)
        rng = np.random.default_rng(seed + 3)
        with QueryService(
            source, shards=1, pool="serial", cache_size=0, policy=policy
        ) as service:
            mutator = WorkloadMutator(source, rng)
            seconds = 0.0
            for _ in range(max(1, epochs)):
                for _ in range(max(1, mutations_per_epoch)):
                    mutator.apply_one()
                started = time.perf_counter()
                service._refresh()
                seconds += time.perf_counter() - started
            served = service.submit(spec)
            snapshot = service._executor.database
            cells[label] = {
                "epochs": epochs,
                "mutations_per_epoch": mutations_per_epoch,
                "refresh_seconds_total": seconds,
                "refresh_seconds_per_epoch": seconds / max(1, epochs),
                "snapshot_refreshes": service.counters.snapshot_refreshes,
                "snapshot_patches": service.counters.snapshot_patches,
            }
            answers[label] = (served.item_ids, served.scores)
            snapshots[label] = snapshot
    identical = answers["patched"] == answers["rebuild"] and all(
        bool(np.array_equal(a.items_array, b.items_array))
        and a.scores_array.tobytes() == b.scores_array.tobytes()
        and bool(np.array_equal(a.rank_by_row, b.rank_by_row))
        for a, b in zip(snapshots["patched"].lists, snapshots["rebuild"].lists)
    )
    rebuild_cost = cells["rebuild"]["refresh_seconds_per_epoch"]
    patched_cost = cells["patched"]["refresh_seconds_per_epoch"]
    return {
        "config": {
            **asdict(config),
            "epochs": epochs,
            "mutations_per_epoch": mutations_per_epoch,
        },
        **cells,
        "speedup_patched_vs_rebuild": (
            rebuild_cost / patched_cost if patched_cost > 0 else float("inf")
        ),
        "snapshots_identical": identical,
    }


def run_workload(
    config: WorkloadConfig,
    *,
    include_baseline: bool = True,
    mode: str = "serial",
    concurrency: int = 8,
    mutation_rate: float = 0.0,
    verify: bool = False,
    snapshot_in=None,
    snapshot_out=None,
    watch_port: int | None = None,
    watch_wait: float = 0.0,
    reverse_rate: float = 0.0,
    reverse_users: int = 32,
    reverse_k: int = 10,
) -> dict:
    """Replay one workload configuration; returns the JSON-ready report.

    ``mode="async"`` replays through ``submit_async``/``gather_many``
    with the given concurrency instead of the serial ``submit_many``.
    With ``include_baseline`` the same workload is also replayed
    serially, unsharded, with the cache off (the repo's status-quo
    execution path) and every answer is cross-checked for equality — a
    cache, merge or coalescing bug fails the run instead of polluting
    the numbers.

    A positive ``mutation_rate`` switches to the mutation replay: the
    database becomes a live :class:`repro.dynamic.DynamicDatabase`,
    mutations interleave with the queries, and correctness is checked
    per query against the brute-force oracle (``verify``) instead of
    against a fixed baseline replay (the data a baseline would answer
    over no longer exists by the time the replay ends).

    ``snapshot_in`` warm-starts the replay from a ``.bpsn`` snapshot
    file instead of regenerating the dataset (in the mutation replay
    the service itself is restored via
    :meth:`QueryService.from_snapshot`, so its epoch clock resumes at
    the persisted epoch); ``snapshot_out`` persists the final snapshot
    after the replay so the next process can pick up where this one
    stopped.

    ``watch_port`` (mutation replay only) additionally serves the live
    service behind a :class:`repro.watch.server.WatchServer` on that
    port for the duration of the replay, so external processes can hold
    standing subscriptions against the mutating data (``repro watch``
    tails their deltas); ``watch_wait`` blocks up to that many seconds
    for at least one subscription to register before replaying, so a
    tailing client observes the stream from the start.

    A positive ``reverse_rate`` seeds ``reverse_users`` weight vectors
    into the service's reverse registry and interleaves reverse top-k
    queries (``k=reverse_k``) into the replay (see
    :func:`replay_with_mutations`); it rides the same live-database
    path as the mutation replay and composes with any
    ``mutation_rate`` (including zero).
    """
    if mode not in ("serial", "async"):
        raise ValueError(f"unknown mode {mode!r}; expected 'serial' or 'async'")
    if watch_port is not None and mutation_rate <= 0:
        raise ValueError(
            "watch_port needs the mutation replay (mutation_rate > 0): "
            "standing queries over static data never produce a delta"
        )
    if reverse_rate > 0 and reverse_users < 1:
        raise ValueError(
            f"reverse_users must be >= 1 with reverse_rate > 0, "
            f"got {reverse_users}"
        )
    if snapshot_in is not None:
        from repro.storage import load_snapshot

        database, restored_epoch = load_snapshot(snapshot_in)
    else:
        database, restored_epoch = build_database(config), None
    workload = build_workload(config)
    policy = ServicePolicy(adaptive=True) if config.adaptive else None

    if mutation_rate > 0 or reverse_rate > 0:
        if mode != "serial":
            raise ValueError(
                "mutation replay is serial: interleaving a deterministic "
                "mutation stream with concurrent submits would make the "
                "per-query oracle ambiguous"
            )
        source = dynamic_from(database)
        if snapshot_in is not None:
            service_cm = QueryService.from_snapshot(
                snapshot_in,
                source=source,
                shards=config.shards,
                pool=config.pool,
                cache_size=config.cache_size,
                policy=policy,
            )
        else:
            service_cm = QueryService(
                source,
                shards=config.shards,
                pool=config.pool,
                cache_size=config.cache_size,
                policy=policy,
            )
        watch_server = None
        if watch_port is not None:
            from repro.watch.server import WatchServer

            watch_server = WatchServer(service_cm, port=watch_port).start()
            if watch_wait > 0:
                deadline = time.monotonic() + watch_wait
                while (
                    not service_cm.subscriptions
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.05)
        watch_summary = None
        try:
            with service_cm as service:
                if reverse_rate > 0:
                    service.reverse_registry.seed_users(
                        reverse_users, source.m, seed=config.seed + 7
                    )
                summary, _ = replay_with_mutations(
                    service,
                    workload,
                    source,
                    mutation_rate=mutation_rate,
                    seed=config.seed,
                    verify=verify,
                    lock=watch_server.lock if watch_server else None,
                    reverse_rate=reverse_rate,
                    reverse_k=reverse_k,
                )
                cache = service.cache
                summary["cache"] = (
                    {
                        "maxsize": cache.maxsize,
                        "entries": len(cache),
                        "hits": cache.stats.hits,
                        "misses": cache.stats.misses,
                        "evictions": cache.stats.evictions,
                        "invalidations": cache.stats.invalidations,
                        "revalidated": cache.stats.revalidated,
                        "patched": cache.stats.patched,
                    }
                    if cache is not None
                    else None
                )
                adaptive = _adaptive_summary(service)
                if adaptive is not None:
                    summary["adaptive"] = adaptive
                pool_kind = service.pool_kind
                if watch_server is not None:
                    with watch_server.lock:
                        counters = service.counters
                        watch_summary = {
                            "port": watch_server.port,
                            "subscriptions": len(service.subscriptions),
                            "unchanged": counters.watch_unchanged,
                            "patched": counters.watch_patched,
                            "recomputed": counters.watch_recomputed,
                            "deltas": counters.watch_deltas,
                        }
                snapshot_info = None
                if snapshot_out is not None:
                    guard = (
                        watch_server.lock if watch_server else nullcontext()
                    )
                    with guard:
                        saved_epoch = service.save_snapshot(snapshot_out)
                    snapshot_info = {
                        "path": str(snapshot_out),
                        "epoch": saved_epoch,
                    }
        finally:
            if watch_server is not None:
                watch_server.close()
        report = {
            "config": asdict(config),
            "mode": "serial+mutations",
            "pool_resolved": pool_kind,
            "cpu_count": os.cpu_count(),
            "service": summary,
        }
        if watch_summary is not None:
            report["watch"] = watch_summary
        if restored_epoch is not None:
            report["snapshot_restored_epoch"] = restored_epoch
        if snapshot_info is not None:
            report["snapshot_saved"] = snapshot_info
        return report

    with QueryService(
        database,
        shards=config.shards,
        pool=config.pool,
        cache_size=config.cache_size,
        policy=policy,
    ) as service:
        if mode == "async":
            summary, results = replay_async(
                service, workload, concurrency=concurrency
            )
        else:
            summary, results = replay(service, workload)
        cache = service.cache
        summary["cache"] = (
            {
                "maxsize": cache.maxsize,
                "entries": len(cache),
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "evictions": cache.stats.evictions,
                "invalidations": cache.stats.invalidations,
            }
            if cache is not None
            else None
        )
        adaptive = _adaptive_summary(service)
        if adaptive is not None:
            summary["adaptive"] = adaptive
        if verify:
            oracle = dynamic_from(database)
            mismatches = sum(
                not answers_match(
                    served.item_ids,
                    served.scores,
                    oracle,
                    min(spec.k, database.n),
                    spec.scoring,
                )
                for spec, served in zip(workload, results)
            )
            summary["verified_identical"] = mismatches == 0
            summary["verify_mismatches"] = mismatches
        pool_kind = service.pool_kind
        snapshot_info = None
        if snapshot_out is not None:
            saved_epoch = service.save_snapshot(snapshot_out)
            snapshot_info = {"path": str(snapshot_out), "epoch": saved_epoch}

    report = {
        "config": asdict(config),
        "mode": mode,
        "pool_resolved": pool_kind,
        "cpu_count": os.cpu_count(),
        "service": summary,
    }
    if restored_epoch is not None:
        report["snapshot_restored_epoch"] = restored_epoch
    if snapshot_info is not None:
        report["snapshot_saved"] = snapshot_info

    if include_baseline:
        with QueryService(
            database, shards=1, pool="serial", cache_size=0
        ) as baseline:
            baseline_summary, baseline_results = replay(baseline, workload)
        report["baseline_unsharded_no_cache"] = baseline_summary
        report["results_identical_to_baseline"] = _served_answers(
            results
        ) == _served_answers(baseline_results)
        baseline_qps = baseline_summary["queries_per_second"]
        report["speedup_vs_baseline"] = (
            summary["queries_per_second"] / baseline_qps
            if baseline_qps > 0
            else float("inf")
        )
    return report


def adaptive_contrast(
    *,
    n: int = 3_000,
    m: int = 7,
    queries: int = 240,
    distinct: int = 12,
    k_max: int = 16,
    seed: int = 42,
    generator: str = "correlated",
    alpha: float | None = 0.001,
    phase_shift: int = 3,
    adversarial_ratio: float = 0.1,
    key_skew: float | None = None,
    static_widths: Sequence[int] = (1, 4, 16),
    adaptive_initial_width: int = 4,
    feedback_min_samples: int = 2,
    stationary_tolerance: float = 1.15,
    verify: bool = True,
) -> dict:
    """Adaptive vs every static block width, phase-shifting workload.

    The same phase-shifting query stream (alternating narrow-k and
    deep-k phases with adversarial deep-stop queries sprinkled in) is
    replayed over the simulated network once per static ``block_width``
    and once adaptively (:class:`repro.service.feedback.AdaptiveState`:
    feedback-calibrated planning plus the AIMD width controller).  Every
    cell runs cache-off, serial, single-shard, so wall-clock and
    message/byte counts measure execution, not caching.

    No static width wins everywhere — narrow phases punish wide blocks
    (wasted probes), deep phases punish narrow ones (per-round message
    overhead) — so the adaptive controller, which converges to each
    phase's best width within a few queries, should beat the *best*
    static cell on wall-clock and/or combined network cost
    (``messages * 256 + bytes``, the batch protocol's framing-dominated
    cost).  A *stationary* replay of the same shape pins the other side:
    adaptation overhead must stay within ``stationary_tolerance`` of the
    best static cell's wall-clock, or match it on the deterministic
    network cost.  With ``verify`` every served answer in every cell
    is checked bit-identical against the brute-force oracle, and all
    cells are cross-checked identical to each other — the contrast is
    between equally-correct executions.

    The default dataset is strongly *correlated* (``alpha = 0.001``):
    only when the lists agree does the stop depth track ``k``, which is
    what makes the phases genuinely disagree about the best width — on
    uniform data even ``k = 1`` stops deeper than the widest block and
    the widest static width quietly wins everything.
    """
    base = WorkloadConfig(
        generator=generator,
        alpha=alpha,
        n=n,
        m=m,
        seed=seed,
        queries=queries,
        distinct=distinct,
        k_max=k_max,
        shards=1,
        pool="serial",
        cache_size=0,
    )
    database = build_database(base)
    oracle = dynamic_from(database) if verify else None
    # The database is static, so the brute-force oracle's answer for a
    # given (k, scoring) never changes — compute each once, not per cell.
    expected_cache: dict[tuple, tuple] = {}

    def expected_for(k: int, scoring) -> tuple:
        key = (k, scoring_key(scoring))
        if key not in expected_cache:
            expected_cache[key] = fresh_topk(oracle, k, scoring)
        return expected_cache[key]

    def run_cell(workload: list[QuerySpec], policy: ServicePolicy) -> dict:
        with QueryService(
            database, shards=1, pool="serial", cache_size=0, policy=policy
        ) as service:
            # Warmup replay: the adaptive cell spends its bounded
            # exploration and converges here; static cells (and the
            # cache-off service itself) are unaffected.  The timed pass
            # then measures steady state — the regime a long-running
            # service actually operates in.  Phase transitions still
            # happen live inside the timed pass; only the one-time
            # cold-start exploration is amortized out.
            started = time.perf_counter()
            service.submit_many(list(workload))
            cold_seconds = time.perf_counter() - started
            started = time.perf_counter()
            results = service.submit_many(list(workload))
            seconds = time.perf_counter() - started
            messages = 0
            transferred = 0
            for served in results:
                network = served.result.extras.get("network") or {}
                messages += int(network.get("messages", 0))
                transferred += int(network.get("bytes", 0))
            cell: dict[str, object] = {
                "seconds": seconds,
                "cold_seconds": cold_seconds,
                "queries_per_second": (
                    len(results) / seconds if seconds > 0 else 0.0
                ),
                "messages": messages,
                "bytes": transferred,
                "network_cost": messages * 256 + transferred,
            }
            adaptive = _adaptive_summary(service)
            if adaptive is not None:
                cell["adaptive"] = adaptive
            if oracle is not None:
                mismatches = sum(
                    not answers_match(
                        served.item_ids,
                        served.scores,
                        oracle,
                        min(spec.k, database.n),
                        spec.scoring,
                        expected=expected_for(
                            min(spec.k, database.n), spec.scoring
                        ),
                    )
                    for spec, served in zip(workload, results)
                )
                cell["verified_identical"] = mismatches == 0
                cell["verify_mismatches"] = mismatches
            cell["_answers"] = _served_answers(results)
            return cell

    def run_grid(workload: list[QuerySpec]) -> dict:
        cells: dict[str, dict] = {}
        for width in static_widths:
            cells[f"static_w{width}"] = run_cell(
                workload,
                ServicePolicy(
                    transport="network",
                    wire_protocol="batch",
                    block_width=int(width),
                ),
            )
        cells["adaptive"] = run_cell(
            workload,
            ServicePolicy(
                transport="network",
                wire_protocol="batch",
                block_width=adaptive_initial_width,
                adaptive=True,
                feedback_min_samples=feedback_min_samples,
            ),
        )
        reference = cells["adaptive"]["_answers"]
        identical = all(
            cell["_answers"] == reference for cell in cells.values()
        )
        for cell in cells.values():
            del cell["_answers"]
        static = {
            label: cell
            for label, cell in cells.items()
            if label != "adaptive"
        }
        best_wall = min(static, key=lambda label: static[label]["seconds"])
        best_cost = min(
            static, key=lambda label: static[label]["network_cost"]
        )
        adaptive_cell = cells["adaptive"]
        wall_ratio = (
            adaptive_cell["seconds"] / static[best_wall]["seconds"]
            if static[best_wall]["seconds"] > 0
            else float("inf")
        )
        cost_ratio = (
            adaptive_cell["network_cost"] / static[best_cost]["network_cost"]
            if static[best_cost]["network_cost"] > 0
            else float("inf")
        )
        return {
            "cells": cells,
            "best_static_wall": best_wall,
            "best_static_network_cost": best_cost,
            "adaptive_wall_vs_best_static": wall_ratio,
            "adaptive_network_cost_vs_best_static": cost_ratio,
            "answers_identical_across_cells": identical,
            "all_verified": (
                all(
                    cell.get("verified_identical", False)
                    for cell in cells.values()
                )
                if verify
                else None
            ),
        }

    shifting_config = WorkloadConfig(
        **{
            **asdict(base),
            "phase_shift": phase_shift,
            "adversarial_ratio": adversarial_ratio,
            "key_skew": key_skew,
        }
    )
    shifting = run_grid(build_workload(shifting_config))
    stationary = run_grid(build_workload(base))

    beats_wall = shifting["adaptive_wall_vs_best_static"] < 1.0
    beats_cost = shifting["adaptive_network_cost_vs_best_static"] < 1.0
    # Wall-clock on a loaded box is noisy; the deterministic network
    # accounting is the authoritative tie-breaker for the stationary
    # side just as it is for the phase-shifting side.
    ties = (
        stationary["adaptive_wall_vs_best_static"] <= stationary_tolerance
        or stationary["adaptive_network_cost_vs_best_static"] <= 1.0
    )
    return {
        "benchmark": "adaptive_speedup",
        "config": {
            **asdict(shifting_config),
            "static_widths": [int(w) for w in static_widths],
            "adaptive_initial_width": adaptive_initial_width,
            "feedback_min_samples": feedback_min_samples,
            "stationary_tolerance": stationary_tolerance,
        },
        "cpu_count": os.cpu_count(),
        "phase_shifting": shifting,
        "stationary": stationary,
        "summary": {
            "adaptive_beats_best_static_wall": beats_wall,
            "adaptive_beats_best_static_network_cost": beats_cost,
            "adaptive_beats_best_static": beats_wall or beats_cost,
            "adaptive_ties_stationary_within_tolerance": ties,
            "all_verified": (
                bool(
                    shifting["all_verified"] and stationary["all_verified"]
                )
                if verify
                else None
            ),
        },
    }


def speedup_benchmark(
    *,
    n: int = 100_000,
    m: int = 3,
    queries: int = 400,
    distinct: int = 40,
    k_max: int = 20,
    shards: int = 4,
    generator: str = "uniform",
    zipf_theta: float = 1.0,
    seed: int = 42,
    pool: str = "auto",
) -> dict:
    """The unsharded-vs-sharded x cold-vs-warm service benchmark.

    For each shard count in {1, ``shards``} the same Zipf-popular
    workload is replayed three ways: cache off (the status-quo
    baseline), cache on starting cold (compulsory misses included), and
    cache on warm (an identical second replay).  All answers are
    cross-checked against the cache-off replay.  The headline
    ``speedup_s{S}_service_vs_unsharded_baseline`` compares the service
    as shipped (S shards, cache on, cold start) against replaying every
    query unsharded with no cache.

    The report also carries a ``mutation_workload`` section
    (:func:`mutation_contrast`, at a reduced scale): the same replay
    with a mutation before every query, served once by the delta-aware
    cache and once by the whole-epoch scheme — both oracle-verified.

    Note: shard fan-out buys wall-clock time only where there are cores
    to fan out to; ``cpu_count`` is recorded so single-core numbers read
    as what they are.
    """
    config = WorkloadConfig(
        generator=generator,
        n=n,
        m=m,
        seed=seed,
        queries=queries,
        distinct=distinct,
        k_max=k_max,
        zipf_theta=zipf_theta,
        shards=shards,
        pool=pool,
    )
    database = build_database(config)
    workload = build_workload(config)

    grid: dict[str, dict] = {}
    reference_answers: list[tuple] | None = None
    identical = True
    for shard_count in sorted({1, max(1, shards)}):
        label = "unsharded" if shard_count == 1 else f"sharded_s{shard_count}"
        cell: dict[str, object] = {"shards": shard_count}

        with QueryService(
            database, shards=shard_count, pool=pool, cache_size=0
        ) as service:
            off_summary, off_results = replay(service, workload)
        cell["cache_off"] = off_summary
        if reference_answers is None:
            reference_answers = _served_answers(off_results)
        else:
            identical &= reference_answers == _served_answers(off_results)

        with QueryService(
            database, shards=shard_count, pool=pool, cache_size=1024
        ) as service:
            cold_summary, cold_results = replay(service, workload)
            warm_summary, warm_results = replay(service, workload)
        cell["cache_cold"] = cold_summary
        cell["cache_warm"] = warm_summary
        identical &= reference_answers == _served_answers(cold_results)
        identical &= reference_answers == _served_answers(warm_results)
        grid[label] = cell

    sharded_label = f"sharded_s{shards}" if shards > 1 else "unsharded"
    sharded = grid[sharded_label]
    hit_rate = sharded["cache_cold"]["cache_hit_rate"]
    baseline_qps = grid["unsharded"]["cache_off"]["queries_per_second"]
    cold_qps = sharded["cache_cold"]["queries_per_second"]
    warm_qps = sharded["cache_warm"]["queries_per_second"]
    mutation = mutation_contrast(
        n=min(n, 5_000),
        m=m,
        queries=min(queries, 300),
        distinct=min(distinct, 30),
        k_max=k_max,
        zipf_theta=zipf_theta,
        seed=seed,
        generator=generator,
    )
    refresh = snapshot_refresh_benchmark(
        n=min(n, 5_000),
        m=m,
        epochs=min(queries, 120),
        seed=seed,
        generator=generator,
    )
    return {
        "benchmark": "service_speedup",
        "config": asdict(config),
        "cpu_count": os.cpu_count(),
        "grid": grid,
        "mutation_workload": mutation,
        "snapshot_refresh": refresh,
        "speedups": {
            f"speedup_s{shards}_service_vs_unsharded_baseline": (
                cold_qps / baseline_qps if baseline_qps > 0 else float("inf")
            ),
            f"speedup_s{shards}_warm_vs_cold_cache": (
                warm_qps / cold_qps if cold_qps > 0 else float("inf")
            ),
            f"speedup_s{shards}_vs_unsharded_cache_off": (
                sharded["cache_off"]["queries_per_second"] / baseline_qps
                if baseline_qps > 0
                else float("inf")
            ),
        },
        "cache_hit_rate_zipf_replay": hit_rate,
        "results_identical_to_cache_off": identical,
    }


def write_report(report: dict, path) -> Path:
    """Write a JSON report, creating parent directories as needed."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return out
