"""Delta-aware, epoch-indexed LRU result cache keyed by query specs.

Two queries should share a cache entry exactly when the engine would do
identical work for them: same algorithm, same (over)fetched ``k``, same
scoring semantics, same algorithm options.  :func:`normalized_query_key`
canonicalizes those four dimensions; notably, scoring *instances* are
keyed by ``(type, name, repr)`` so two ``SumScoring()`` objects share an
entry while a user lambda (whose repr embeds its id) never falsely
collides with another.

**Invalidation.**  The service bumps its *epoch* on every mutation of
the underlying lists; nothing scans the cache on write, so a mutation
stays O(1) regardless of how many results are cached.  A lookup under a
newer epoch used to drop the entry unconditionally (whole-epoch
invalidation).  With a :class:`repro.dynamic.MutationLog` attached, the
cache instead *reasons* about the delta, yielding one of four outcomes
(surfaced as :attr:`ServiceStats.cache_outcome <repro.service.ServiceStats>`):

* ``hit`` — entry epoch equals the lookup epoch; nothing to prove.
* ``revalidated`` — every logged mutation in the window is provably
  harmless, so the entry is re-stamped to the current epoch *in place*.
  The certificate is the cached k-th entry under the library's total
  order (:func:`repro.exec.merge.entry_key` — the score the certified
  merge exposes as ``extras["certificate_threshold"]``, paired with the
  entry's id so exact ties stay decidable): a touched non-member whose
  new ``(-score, id)`` key falls beyond it cannot enter the top-k, a
  removed non-member cannot either, and a member whose aggregate is
  unchanged cannot move.  An answer the merge marked as underfull
  (``certificate_threshold`` present but ``None``: fewer than k items
  existed) carries no boundary at all and always misses.
* ``patched`` — at most ``patch_limit`` touched objects could affect
  the answer, and the repair is provably exact: the touched objects are
  re-scored against the current snapshot (``lookup_many``) and merged
  back into the cached pool.  The patch is kept only if the pool's new
  k-th key still dominates the old certificate — every *untouched*
  outsider was beyond the old boundary, so it stays beyond the new one.
* ``miss`` — a certificate-breaking delta (a cached member deleted, the
  patched boundary weakening past the old one, too many touched
  objects, or a log window the :class:`MutationLog` cannot prove it
  covers).  The entry is dropped and the query recomputes.

Entries are additionally indexed *by epoch*, so dropping everything
below the log's retention floor (entries that could never revalidate
again) costs O(dropped), not a scan of the table —
:meth:`ResultCache.drop_expired`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.dynamic.mutation_log import MutationLog

# The k-th-entry certificate reasoning is shared with standing
# subscriptions (:mod:`repro.watch`) through the execution core.
from repro.exec import certify

# The patch path's rescore signature is certify's; re-exported here for
# backward compatibility.
from repro.exec.certify import RescoreFn  # noqa: F401

# Canonical query/scoring identities live in the execution core so the
# shard workers, context caches and this result cache agree on them;
# re-exported here for backward compatibility.
from repro.exec.keys import (  # noqa: F401
    freeze_value,
    normalized_query_key,
    scoring_key,
)
from repro.exec.merge import entry_key
from repro.service.sharding import MERGE_EXACT_ALGORITHMS
from repro.types import Score, TopKResult

#: A lookup's classification, in decreasing order of luck.
CACHE_OUTCOMES = ("hit", "revalidated", "patched", "miss")

#: Algorithms whose returned scores are exact overall aggregates — the
#: precondition of the delta certificate.  NRA reports lower *bounds*
#: (and may order/score ties differently from the exact aggregates), so
#: comparing logged exact aggregates against its cached scores — or
#: re-merging them into its pool — would change the served answer, not
#: just its latency; NRA entries therefore expire whole-epoch.  This is
#: the same precondition as the shard merge's
#: :data:`repro.service.sharding.MERGE_EXACT_ALGORITHMS` (derived from
#: it, one source of truth), widened with the distributed drivers
#: (which run the exact unified TA/BPA/BPA2).
EXACT_SCORE_ALGORITHMS = MERGE_EXACT_ALGORITHMS | frozenset(
    {"dist-ta", "dist-bpa", "dist-bpa2"}
)


@dataclass
class CacheStats:
    """Counters describing one cache's lifetime behavior."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    revalidated: int = 0  #: delta-proven harmless, entry re-stamped in place
    patched: int = 0  #: repaired by re-scoring <= patch_limit touched items

    @property
    def reuses(self) -> int:
        """Lookups answered without re-execution (any non-miss outcome)."""
        return self.hits + self.revalidated + self.patched

    @property
    def lookups(self) -> int:
        """Total number of ``get``/``lookup`` calls."""
        return self.reuses + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        return self.reuses / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class CacheLookup:
    """One lookup's verdict: the served value (or ``None``) and how."""

    value: object | None
    outcome: str  #: one of :data:`CACHE_OUTCOMES`


class ResultCache:
    """A bounded LRU cache with delta-aware epoch expiry.

    Args:
        maxsize: maximum number of retained entries (>= 1).
        log: the service's :class:`repro.dynamic.MutationLog`; without
            one every epoch change is a plain (whole-epoch) miss.
        patch_limit: largest number of touched objects a patch may
            re-score — bigger deltas fall through to recomputation.

    **Delta-path precondition.**  A :class:`TopKResult` is only
    delta-validated when its scores are exact aggregates of a *full*
    top-k answer: the algorithm must be in
    :data:`EXACT_SCORE_ALGORITHMS`, and an answer the certified merge
    marked underfull (``extras["certificate_threshold"] is None``)
    always misses.  Callers caching results that bypass the merge must
    not cache underfull answers (:class:`repro.service.QueryService`
    guards its ``put`` accordingly) — the delta path treats the last
    cached entry as an exclusion boundary, which an underfull answer
    does not have.
    """

    __slots__ = (
        "_maxsize",
        "_entries",
        "_by_epoch",
        "_min_bucket",
        "_log",
        "_patch_limit",
        "stats",
    )

    def __init__(
        self,
        maxsize: int = 1024,
        *,
        log: MutationLog | None = None,
        patch_limit: int = 8,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        if patch_limit < 0:
            raise ValueError(f"patch_limit must be >= 0, got {patch_limit}")
        self._maxsize = maxsize
        #: key -> (epoch, value); insertion order is recency order.
        self._entries: OrderedDict[tuple, tuple[int, object]] = OrderedDict()
        #: epoch -> keys cached under it (kept exactly in sync with
        #: ``_entries`` so expiry never scans the whole table).
        self._by_epoch: dict[int, set[tuple]] = {}
        #: conservative lower bound on the oldest bucket epoch (never
        #: *above* the true minimum), letting :meth:`drop_expired`
        #: answer its common no-op case in O(1).
        self._min_bucket: int | None = None
        self._log = log
        self._patch_limit = patch_limit
        self.stats = CacheStats()

    @property
    def maxsize(self) -> int:
        """Capacity in entries."""
        return self._maxsize

    @property
    def log(self) -> MutationLog | None:
        """The attached mutation log (``None`` = whole-epoch expiry)."""
        return self._log

    @property
    def patch_limit(self) -> int:
        """Largest touched-object count a patch may repair."""
        return self._patch_limit

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    # Epoch index bookkeeping
    # ------------------------------------------------------------------

    def _index_add(self, key: tuple, epoch: int) -> None:
        self._by_epoch.setdefault(epoch, set()).add(key)
        if self._min_bucket is None or epoch < self._min_bucket:
            self._min_bucket = epoch

    def _index_discard(self, key: tuple, epoch: int) -> None:
        bucket = self._by_epoch.get(epoch)
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del self._by_epoch[epoch]

    def _drop(self, key: tuple, epoch: int) -> None:
        del self._entries[key]
        self._index_discard(key, epoch)

    def drop_expired(self, min_epoch: int) -> int:
        """Drop every entry cached below ``min_epoch``; returns the count.

        Entries below the mutation log's retention floor can never be
        revalidated or patched again — the log cannot enumerate their
        delta — so the service expires them eagerly whenever the floor
        advances.  The no-op case (nothing old enough, i.e. every
        mutation once the cache is warm) is O(1) via the ``_min_bucket``
        bound; an actual purge costs O(dropped + live epoch buckets),
        independent of how many entries the cache holds (the unit
        benchmark guard in ``tests/unit/test_service_cache.py`` checks
        that).
        """
        if self._min_bucket is None or self._min_bucket >= min_epoch:
            return 0
        stale = [epoch for epoch in self._by_epoch if epoch < min_epoch]
        dropped = 0
        for epoch in stale:
            for key in self._by_epoch.pop(epoch):
                del self._entries[key]
                dropped += 1
        # The bound is exact again after a purge; lookups/evictions may
        # let it drift low afterwards, which only costs (at most) one
        # redundant bucket scan on the next purge, never correctness.
        self._min_bucket = min(self._by_epoch, default=None)
        self.stats.invalidations += dropped
        return dropped

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------

    def get(self, key: tuple, epoch: int):
        """The cached value, or ``None`` (legacy whole-epoch interface)."""
        return self.lookup(key, epoch).value

    def lookup(
        self,
        key: tuple,
        epoch: int,
        *,
        scoring: Callable[[Sequence[Score]], Score] | None = None,
        rescore: RescoreFn | None = None,
    ) -> CacheLookup:
        """Classify one lookup: hit, revalidated, patched, or miss.

        ``scoring`` and ``rescore`` enable the delta path; without them
        (or without an attached log) any epoch change is a miss, exactly
        the pre-delta behavior.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return CacheLookup(None, "miss")
        entry_epoch, value = entry
        if entry_epoch == epoch:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return CacheLookup(value, "hit")
        if entry_epoch > epoch:
            # A lookup from *behind* the entry (e.g. a deferred-snapshot
            # query) cannot use it, but the entry itself is still the
            # freshest answer — leave it alone.
            self.stats.misses += 1
            return CacheLookup(None, "miss")

        outcome, served = self._delta_outcome(
            value, entry_epoch, epoch, scoring, rescore
        )
        if outcome == "revalidated":
            self._index_discard(key, entry_epoch)
            self._index_add(key, epoch)
            self._entries[key] = (epoch, value)
            self._entries.move_to_end(key)
            self.stats.revalidated += 1
            return CacheLookup(value, "revalidated")
        if outcome == "patched":
            self._index_discard(key, entry_epoch)
            self._index_add(key, epoch)
            self._entries[key] = (epoch, served)
            self._entries.move_to_end(key)
            self.stats.patched += 1
            return CacheLookup(served, "patched")
        # The entry written under an older epoch could not be proven
        # current — drop it on sight, as whole-epoch expiry always did.
        self._drop(key, entry_epoch)
        self.stats.invalidations += 1
        self.stats.misses += 1
        return CacheLookup(None, "miss")

    def put(self, key: tuple, value: object, epoch: int) -> None:
        """Insert (or refresh) an entry under the given epoch."""
        previous = self._entries.get(key)
        if previous is not None:
            self._index_discard(key, previous[0])
        self._entries[key] = (epoch, value)
        self._entries.move_to_end(key)
        self._index_add(key, epoch)
        while len(self._entries) > self._maxsize:
            evicted_key, (evicted_epoch, _) = self._entries.popitem(last=False)
            self._index_discard(evicted_key, evicted_epoch)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        self._entries.clear()
        self._by_epoch.clear()
        self._min_bucket = None

    def keys(self) -> Sequence[tuple]:
        """Current keys, least-recently used first (for introspection)."""
        return tuple(self._entries)

    def entry_epoch(self, key: tuple) -> int | None:
        """The epoch a key is cached under (``None`` when absent)."""
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    # ------------------------------------------------------------------
    # The delta certificate
    # ------------------------------------------------------------------

    def _delta_outcome(
        self,
        value: object,
        entry_epoch: int,
        epoch: int,
        scoring: Callable[[Sequence[Score]], Score] | None,
        rescore: RescoreFn | None,
    ) -> tuple[str, object | None]:
        """Classify an out-of-epoch entry against the logged delta."""
        if (
            self._log is None
            or scoring is None
            or not isinstance(value, TopKResult)
            or not value.items
        ):
            return "miss", None
        if value.algorithm not in EXACT_SCORE_ALGORITHMS:
            # The certificate compares logged exact aggregates against
            # the cached scores, so it is only sound when those scores
            # *are* exact aggregates — NRA's are lower bounds; unknown
            # algorithms get the safe treatment (whole-epoch expiry).
            return "miss", None
        if value.extras.get("certificate_threshold", False) is None:
            # The certified merge explicitly marked this answer as
            # underfull (fewer than k items existed): its last entry is
            # not an exclusion boundary, so nothing can be proven.
            return "miss", None
        events = self._log.events_between(entry_epoch, epoch)
        if events is None:
            # Truncated or poisoned window: the log cannot enumerate
            # what changed, so the only safe answer is a recomputation.
            return "miss", None

        # The shared certificate core (also driving standing
        # subscriptions — see :mod:`repro.watch`) does the reasoning;
        # this cache maps its verdicts onto cache outcomes:
        # unchanged -> revalidated, patch -> patched, recompute -> miss.
        members = {item.item: item.score for item in value.items}
        boundary = entry_key(value.items[-1])
        verdict, touched = certify.classify_delta(
            members,
            boundary,
            events,
            scoring,
            patch_limit=self._patch_limit,
        )
        if verdict == certify.UNCHANGED:
            return "revalidated", value
        if verdict != certify.PATCH or rescore is None:
            return "miss", None
        merged = certify.patch_entries(
            value.items,
            touched,
            boundary,
            scoring,
            rescore,
            k=len(value.items),
        )
        if merged is None:
            return "miss", None
        patched = replace(
            value,
            items=merged,
            extras={
                **value.extras,
                "certificate_threshold": merged[-1].score,
                "patched_items": len(touched)
                + value.extras.get("patched_items", 0),
            },
        )
        return "patched", patched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache {len(self._entries)}/{self._maxsize} entries, "
            f"hit_rate={self.stats.hit_rate:.2f}>"
        )
