"""Epoch-invalidated LRU result cache keyed by normalized query specs.

Two queries should share a cache entry exactly when the engine would do
identical work for them: same algorithm, same (over)fetched ``k``, same
scoring semantics, same algorithm options.  :func:`normalized_query_key`
canonicalizes those four dimensions; notably, scoring *instances* are
keyed by ``(type, name, repr)`` so two ``SumScoring()`` objects share an
entry while a user lambda (whose repr embeds its id) never falsely
collides with another.

Invalidation is epoch-based and lazy, the standard trick for serving
over mutable data: the service bumps its epoch on every mutation of the
underlying lists, and a cached entry is simply dropped the first time it
is read under a newer epoch.  Nothing scans the cache on write — a
mutation costs O(1) regardless of how many results are cached.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence, Set

from repro.scoring import ScoringFunction


def scoring_key(scoring: ScoringFunction) -> tuple:
    """A hashable identity for a scoring function's *semantics*.

    Stock scorings have faithful reprs (``SumScoring()``,
    ``WeightedSumScoring([2.0, 0.5])``) so equal-behaving instances map
    to the same key.  A callable whose repr is the *default* one (it
    embeds the object's address) gets the instance itself appended to
    the key: comparing by the repr string alone would let CPython's
    address reuse alias a dead scoring with a later, different one,
    while pinning the instance makes the key identity-true (and keeps
    the object alive exactly as long as anything caches under it).
    """
    rep = repr(scoring)
    base = (
        type(scoring).__qualname__,
        str(getattr(scoring, "name", "")),
        rep,
    )
    if f"at 0x{id(scoring):x}" in rep:
        return base + (scoring,)
    return base


def freeze_value(value: Any) -> Hashable:
    """Recursively convert an option value into something hashable."""
    if isinstance(value, Mapping):
        return tuple(
            sorted((str(key), freeze_value(val)) for key, val in value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(freeze_value(entry) for entry in value)
    if isinstance(value, Set):
        return tuple(sorted((repr(entry) for entry in value)))
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def normalized_query_key(
    algorithm: str,
    k: int,
    scoring: ScoringFunction,
    options: Mapping[str, object] = (),
) -> tuple:
    """The canonical cache key for one planned query."""
    return (
        algorithm,
        k,
        scoring_key(scoring),
        freeze_value(dict(options)),
    )


@dataclass
class CacheStats:
    """Counters describing one cache's lifetime behavior."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """A bounded LRU cache whose entries expire when the epoch moves.

    Args:
        maxsize: maximum number of retained entries (>= 1).
    """

    __slots__ = ("_maxsize", "_entries", "stats")

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        #: key -> (epoch, value); insertion order is recency order.
        self._entries: OrderedDict[tuple, tuple[int, object]] = OrderedDict()
        self.stats = CacheStats()

    @property
    def maxsize(self) -> int:
        """Capacity in entries."""
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple, epoch: int):
        """The cached value, or ``None`` on a miss or a stale epoch.

        An entry written under an older epoch is dropped on sight — the
        data it was computed from no longer exists.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        entry_epoch, value = entry
        if entry_epoch != epoch:
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: tuple, value: object, epoch: int) -> None:
        """Insert (or refresh) an entry under the given epoch."""
        self._entries[key] = (epoch, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        self._entries.clear()

    def keys(self) -> Sequence[tuple]:
        """Current keys, least-recently used first (for introspection)."""
        return tuple(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache {len(self._entries)}/{self._maxsize} entries, "
            f"hit_rate={self.stats.hit_rate:.2f}>"
        )
