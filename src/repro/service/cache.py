"""Epoch-invalidated LRU result cache keyed by normalized query specs.

Two queries should share a cache entry exactly when the engine would do
identical work for them: same algorithm, same (over)fetched ``k``, same
scoring semantics, same algorithm options.  :func:`normalized_query_key`
canonicalizes those four dimensions; notably, scoring *instances* are
keyed by ``(type, name, repr)`` so two ``SumScoring()`` objects share an
entry while a user lambda (whose repr embeds its id) never falsely
collides with another.

Invalidation is epoch-based and lazy, the standard trick for serving
over mutable data: the service bumps its epoch on every mutation of the
underlying lists, and a cached entry is simply dropped the first time it
is read under a newer epoch.  Nothing scans the cache on write — a
mutation costs O(1) regardless of how many results are cached.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

# Canonical query/scoring identities live in the execution core so the
# shard workers, context caches and this result cache agree on them;
# re-exported here for backward compatibility.
from repro.exec.keys import (  # noqa: F401
    freeze_value,
    normalized_query_key,
    scoring_key,
)


@dataclass
class CacheStats:
    """Counters describing one cache's lifetime behavior."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """A bounded LRU cache whose entries expire when the epoch moves.

    Args:
        maxsize: maximum number of retained entries (>= 1).
    """

    __slots__ = ("_maxsize", "_entries", "stats")

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        #: key -> (epoch, value); insertion order is recency order.
        self._entries: OrderedDict[tuple, tuple[int, object]] = OrderedDict()
        self.stats = CacheStats()

    @property
    def maxsize(self) -> int:
        """Capacity in entries."""
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple, epoch: int):
        """The cached value, or ``None`` on a miss or a stale epoch.

        An entry written under an older epoch is dropped on sight — the
        data it was computed from no longer exists.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        entry_epoch, value = entry
        if entry_epoch != epoch:
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: tuple, value: object, epoch: int) -> None:
        """Insert (or refresh) an entry under the given epoch."""
        self._entries[key] = (epoch, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        self._entries.clear()

    def keys(self) -> Sequence[tuple]:
        """Current keys, least-recently used first (for introspection)."""
        return tuple(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache {len(self._entries)}/{self._maxsize} entries, "
            f"hit_rate={self.stats.hit_rate:.2f}>"
        )
