"""Runtime feedback for the planner: the service's control loop.

The planner (:mod:`repro.service.planner`) predicts costs from *static*
list statistics.  This module closes the loop with three controllers
fed from completed queries:

* :class:`PlanFeedback` — per (algorithm, transport, workload-signature)
  *arms* accumulate EWMA-smoothed observed seconds next to the cost the
  model predicted for the same run.  A global seconds-per-cost-unit rate
  converts the observations back into cost units, and
  :meth:`repro.types.CostModel.calibrate` blends them with the static
  predictions.  Selection is guarded: an arm participates only after
  ``min_samples`` observations, a challenger must beat the incumbent by
  the hysteresis ``tolerance``, and while any candidate arm is immature
  the least-sampled one is explored (safe — every candidate algorithm
  is exact, so answers never depend on the choice).
* :class:`BlockWidthController` — AIMD over the width lattice
  ``{1, 2, 4, 8, 16}``, one controller per transport, tuned from
  observed round latencies exactly the way
  :class:`repro.service.service.AdaptiveConcurrency` tunes the
  ``gather_many`` window.  A deterministic *overshoot guard* (positions
  fetched far past the stop position) steps the width down even when
  wall-clock noise hides the waste.
* :class:`DriftDetector` — total-variation divergence between
  consecutive windows of bucketed query-spec keys.  A divergence above
  the threshold declares a drift epoch: the service bumps
  ``drift_epochs``, invalidates memoized plans, and re-tunes shard
  count and cache overfetch for the new regime.

Everything here is transport- and algorithm-agnostic bookkeeping; the
wiring lives in :class:`repro.service.service.QueryService`.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.exec.keys import scoring_key
from repro.scoring import ScoringFunction
from repro.types import CostModel

#: The block widths the adaptive controller moves across.  Matches the
#: widths the round-plan engine's ``*-block`` planners are benchmarked
#: at; width 1 is the degenerate single-entry block.
WIDTH_LATTICE: tuple[int, ...] = (1, 2, 4, 8, 16)


def plan_signature(scoring: ScoringFunction, k_fetch: int) -> tuple:
    """The workload-signature arms are keyed by.

    Power-of-two ``k`` buckets mirror the planner's overfetch buckets,
    so every ``k`` served from the same cache bucket feeds the same arm.
    """
    bucket = 1 << (max(1, k_fetch) - 1).bit_length()
    return (scoring_key(scoring), bucket)


@dataclass
class ArmStats:
    """EWMA state of one (algorithm, transport, signature) arm."""

    samples: int = 0
    ewma_seconds: float = 0.0
    ewma_predicted: float = 0.0
    ewma_messages: float = 0.0
    ewma_rounds: float = 0.0

    def observe(
        self,
        *,
        seconds: float,
        predicted: float,
        messages: float,
        rounds: float,
        smoothing: float,
    ) -> None:
        if self.samples == 0:
            self.ewma_seconds = seconds
            self.ewma_predicted = predicted
            self.ewma_messages = messages
            self.ewma_rounds = rounds
        else:
            keep = 1.0 - smoothing
            self.ewma_seconds = keep * self.ewma_seconds + smoothing * seconds
            self.ewma_predicted = (
                keep * self.ewma_predicted + smoothing * predicted
            )
            self.ewma_messages = keep * self.ewma_messages + smoothing * messages
            self.ewma_rounds = keep * self.ewma_rounds + smoothing * rounds
        self.samples += 1


class PlanFeedback:
    """Observed-cost store + guarded arm selection for the planner.

    ``generation`` is a monotone counter the planner memoizes against:
    a memoized :class:`~repro.service.planner.PlanDecision` stays valid
    until the generation moves, which happens only when new evidence
    could change a decision (an immature arm matured a step, an
    observation diverged from its prediction beyond ``tolerance``, or a
    drift epoch invalidated everything).  Stationary workloads whose
    predictions hold therefore keep the memoized plan — the hysteresis
    property the tests pin.
    """

    def __init__(
        self,
        *,
        smoothing: float = 0.25,
        min_samples: int = 5,
        tolerance: float = 0.25,
        blend: float = 0.5,
        reelect_every: int = 16,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if tolerance < 0.0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        if not 0.0 <= blend <= 1.0:
            raise ValueError(f"blend must be in [0, 1], got {blend}")
        if reelect_every < 0:
            raise ValueError(
                f"reelect_every must be >= 0, got {reelect_every}"
            )
        self.smoothing = smoothing
        self.min_samples = min_samples
        self.tolerance = tolerance
        self.blend = blend
        #: every N records the generation bumps unconditionally, so a
        #: signature frozen on a stale incumbent (mature arms, no
        #: divergence) still gets periodically re-elected; 0 disables.
        self.reelect_every = reelect_every
        self._records = 0
        self.generation = 0
        self.replans = 0
        self._arms: dict[tuple, ArmStats] = {}
        self._incumbents: dict[tuple, str] = {}
        # Global seconds-per-cost-unit rate: converts arm seconds back
        # into the cost model's units so calibrate() compares like units.
        self._rate = 0.0
        self._rate_samples = 0
        self._lock = threading.Lock()

    def _arm(self, algorithm: str, transport: str, signature: tuple) -> ArmStats:
        key = (algorithm, transport, signature)
        arm = self._arms.get(key)
        if arm is None:
            arm = ArmStats()
            self._arms[key] = arm
        return arm

    def record(
        self,
        *,
        algorithm: str,
        transport: str,
        signature: tuple,
        predicted_cost: float,
        seconds: float,
        rounds: int = 0,
        messages: int = 0,
    ) -> None:
        """Fold one completed execution into its arm.

        Bumps ``generation`` (invalidating memoized plans) only when the
        new evidence is decision-relevant: the arm is still maturing, or
        the observation disagrees with the prediction beyond the
        hysteresis tolerance.
        """
        with self._lock:
            arm = self._arm(algorithm, transport, signature)
            arm.observe(
                seconds=max(0.0, seconds),
                predicted=max(0.0, predicted_cost),
                messages=float(messages),
                rounds=float(rounds),
                smoothing=self.smoothing,
            )
            if predicted_cost > 0 and seconds > 0:
                rate = seconds / predicted_cost
                if self._rate_samples == 0:
                    self._rate = rate
                else:
                    self._rate = (
                        (1.0 - self.smoothing) * self._rate
                        + self.smoothing * rate
                    )
                self._rate_samples += 1
            self._records += 1
            maturing = arm.samples <= self.min_samples
            diverged = False
            if arm.samples >= self.min_samples and self._rate > 0:
                observed = arm.ewma_seconds / self._rate
                baseline = max(arm.ewma_predicted, 1e-12)
                diverged = abs(observed - baseline) / baseline > self.tolerance
            scheduled = (
                self.reelect_every > 0
                and self._records % self.reelect_every == 0
            )
            if maturing or diverged or scheduled:
                self.generation += 1

    def samples(self, algorithm: str, transport: str, signature: tuple) -> int:
        """Observation count of one arm (0 when never recorded)."""
        arm = self._arms.get((algorithm, transport, signature))
        return arm.samples if arm else 0

    def total_samples(self, algorithm: str, signature: tuple) -> int:
        """Observation count across transports for one algorithm arm."""
        return sum(
            arm.samples
            for (name, _transport, sig), arm in self._arms.items()
            if name == algorithm and sig == signature
        )

    def observed_cost(self, algorithm: str, signature: tuple) -> float | None:
        """EWMA observed cost of an algorithm in cost-model units.

        Aggregated across transports by taking the most-sampled mature
        arm — in practice an algorithm runs on one transport per
        signature, so this is simply "the arm we have evidence for".
        Returns ``None`` while no arm is mature or the global rate is
        still unseeded.
        """
        if self._rate <= 0:
            return None
        best: ArmStats | None = None
        for (name, _transport, sig), arm in self._arms.items():
            if name != algorithm or sig != signature:
                continue
            if arm.samples < self.min_samples:
                continue
            if best is None or arm.samples > best.samples:
                best = arm
        if best is None:
            return None
        return best.ewma_seconds / self._rate

    def calibrated_costs(
        self,
        predicted: Mapping[str, float],
        *,
        signature: tuple,
        model: CostModel,
    ) -> dict[str, float]:
        """Blend static predictions with mature observations per arm."""
        with self._lock:
            calibrated: dict[str, float] = {}
            for name, cost in predicted.items():
                observed = self.observed_cost(name, signature)
                if observed is None:
                    calibrated[name] = cost
                else:
                    calibrated[name] = model.calibrate(
                        cost, observed, blend=self.blend
                    )
            return calibrated

    def explore_candidate(
        self,
        candidates: Iterable[str],
        *,
        signature: tuple,
    ) -> str | None:
        """The least-sampled immature candidate, or ``None`` if all mature.

        Bounded exploration: every candidate arm gets ``min_samples``
        looks, after which selection is purely calibrated-cost driven.
        Safe because every candidate algorithm is exact — the answer is
        bit-identical whichever arm runs.
        """
        with self._lock:
            immature = [
                name
                for name in candidates
                if self.total_samples(name, signature) < self.min_samples
            ]
            if not immature:
                return None
            return min(
                immature,
                key=lambda name: (self.total_samples(name, signature), name),
            )

    def select(
        self,
        candidates: tuple[str, ...],
        calibrated: Mapping[str, float],
        *,
        signature: tuple,
    ) -> tuple[str, bool, str]:
        """Hysteresis-guarded pick among calibrated candidates.

        Returns ``(algorithm, replanned, reason)``.  The incumbent (last
        selection for this signature) is kept unless a challenger's
        calibrated cost undercuts it by more than ``tolerance`` — the
        guard that keeps a stationary workload from flapping between
        near-tied arms.
        """
        with self._lock:
            best = min(candidates, key=lambda name: (calibrated[name], name))
            incumbent = self._incumbents.get(signature)
            if incumbent is None or incumbent not in calibrated:
                self._incumbents[signature] = best
                return best, False, "initial calibrated pick"
            if best != incumbent and calibrated[best] < calibrated[
                incumbent
            ] * (1.0 - self.tolerance):
                self._incumbents[signature] = best
                self.replans += 1
                return (
                    best,
                    True,
                    (
                        f"re-planned from {incumbent}: calibrated cost "
                        f"{calibrated[best]:,.0f} undercuts "
                        f"{calibrated[incumbent]:,.0f} beyond the "
                        f"{self.tolerance:.0%} hysteresis band"
                    ),
                )
            return incumbent, False, "incumbent within hysteresis band"

    @property
    def arm_count(self) -> int:
        """How many (algorithm, transport, signature) arms hold samples."""
        with self._lock:
            return len(self._arms)

    def invalidate(self) -> None:
        """Force every memoized plan to recompute (drift epoch)."""
        with self._lock:
            self.generation += 1
            self._incumbents.clear()


class BlockWidthController:
    """AIMD block-width tuning from observed round latencies.

    The same control shape as ``AdaptiveConcurrency``, with patience in
    both directions: ``patience`` consecutive *bad* records (a round
    slower than ``threshold`` times the EWMA baseline, or a provable
    overshoot) step the width down the lattice, and ``patience``
    consecutive healthy records step it up — the latter only when the
    query actually ran deeper than the current width (``stop_position >
    width``), i.e. a wider block would genuinely have saved a round.
    Symmetric patience is what keeps a *mixed* stationary stream (one
    narrow query between two deep ones) from oscillating.  The
    *overshoot guard* is deterministic: fetching more than
    ``overshoot_limit`` times the positions the algorithm needed means
    the width is wasting accesses regardless of what the clock says.
    """

    def __init__(
        self,
        *,
        initial: int = 1,
        threshold: float = 2.0,
        overshoot_limit: float = 3.0,
        patience: int = 2,
        smoothing: float = 0.2,
    ) -> None:
        if initial not in WIDTH_LATTICE:
            raise ValueError(
                f"initial width {initial} not on the lattice {WIDTH_LATTICE}"
            )
        if threshold <= 1.0:
            raise ValueError(f"threshold must be > 1, got {threshold}")
        if overshoot_limit <= 1.0:
            raise ValueError(
                f"overshoot_limit must be > 1, got {overshoot_limit}"
            )
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self._index = WIDTH_LATTICE.index(initial)
        self._threshold = threshold
        self._overshoot_limit = overshoot_limit
        self._patience = patience
        self._smoothing = smoothing
        self._baseline = 0.0
        self._seeded = False
        self._streak = 0
        self._bad_streak = 0
        self.adjustments = 0
        self.width_histogram: Counter[int] = Counter()

    @property
    def width(self) -> int:
        """The width the next networked round should use."""
        return WIDTH_LATTICE[self._index]

    def provider(self) -> Callable[[], int]:
        """A zero-argument width provider for the round-plan drivers."""
        return lambda: self.width

    def _step_down(self) -> None:
        if self._index > 0:
            self._index -= 1
            self.adjustments += 1
        self._streak = 0
        self._bad_streak = 0

    def _step_up(self) -> None:
        if self._index + 1 < len(WIDTH_LATTICE):
            self._index += 1
            self.adjustments += 1
        self._streak = 0
        self._bad_streak = 0

    def record(
        self,
        *,
        seconds: float,
        rounds: int,
        fetched_positions: int,
        stop_position: int,
        k: int = 1,
    ) -> None:
        """Fold one completed networked execution into the controller.

        The overshoot denominator is a *provable lower bound* on the
        positions the query truly needed: at least ``k`` (a top-k needs
        k positions per list), and more than ``stop_position - width``
        (the rounds before the last were insufficient).  The raw stop
        position itself is useless here — block execution quantizes it
        up to the block boundary, so ``fetched / stop`` is ~1 at every
        width and would never see a too-wide block.
        """
        self.width_histogram[self.width] += 1
        per_round = seconds / max(1, rounds)
        need = max(1, k, stop_position - self.width + 1)
        overshoot = fetched_positions / need
        slow = (
            self._seeded
            and self._baseline > 0
            and per_round > self._threshold * self._baseline
        )
        if overshoot > self._overshoot_limit or slow:
            # Patience applies in both directions: a single narrow query
            # inside a mixed stream must not knock the width down — only
            # a *run* of overshooting queries (a phase) should.
            self._streak = 0
            self._bad_streak += 1
            if self._bad_streak >= self._patience:
                self._step_down()
        else:
            self._bad_streak = 0
            self._streak += 1
            # A wider block only reduces rounds when the current width
            # cannot cover the stop depth in a single round.
            if self._streak >= self._patience and stop_position > self.width:
                self._step_up()
        if not self._seeded:
            self._baseline = per_round
            self._seeded = True
        else:
            self._baseline = (
                (1.0 - self._smoothing) * self._baseline
                + self._smoothing * per_round
            )


class WidthProbe:
    """A width provider that remembers what it handed out.

    Passed as ``block_width`` to the distributed drivers: each round
    resolves the controller's *current* width through ``__call__``, and
    after the run the service reads back the last width used (stamped
    into ``extras["block_width"]`` /
    ``ServiceStats.effective_block_width``) and the total positions
    fetched (the overshoot guard's numerator).
    """

    __slots__ = ("_controller", "last", "total", "calls")

    def __init__(self, controller: BlockWidthController) -> None:
        self._controller = controller
        self.last = controller.width
        self.total = 0
        self.calls = 0

    def __call__(self) -> int:
        width = self._controller.width
        self.last = width
        self.total += width
        self.calls += 1
        return width


def total_variation(a: Mapping, b: Mapping) -> float:
    """Total-variation distance between two count histograms (0..1)."""
    total_a = sum(a.values())
    total_b = sum(b.values())
    if total_a == 0 or total_b == 0:
        return 0.0
    keys = set(a) | set(b)
    return 0.5 * sum(
        abs(a.get(key, 0) / total_a - b.get(key, 0) / total_b) for key in keys
    )


class DriftDetector:
    """Windowed divergence over the bucketed query-spec histogram.

    Query keys (algorithm, power-of-two ``k`` bucket, scoring) stream
    into a current window; when it fills, its histogram is compared to
    the previous full window by total-variation distance.  A distance
    above the threshold is a *drift epoch*: the workload's shape moved
    enough that plans, shard count and cache policy tuned for the old
    shape deserve a fresh look.  Bucketed keys keep stationary
    workloads with many distinct ``k`` values below the threshold.
    """

    def __init__(self, *, window: int = 32, threshold: float = 0.6) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.window = window
        self.threshold = threshold
        self._reference: Counter | None = None
        self._current: Counter = Counter()
        self._count = 0
        self._recent_keys: deque = deque(maxlen=window)
        self.recent_k: deque[int] = deque(maxlen=window)
        self.epochs = 0
        self.last_divergence = 0.0

    @staticmethod
    def bucket(algorithm: str, k: int, scoring: ScoringFunction) -> tuple:
        """The bucketed key one query contributes to the histogram."""
        k_bucket = 1 << (max(1, k) - 1).bit_length()
        return (algorithm, k_bucket, scoring_key(scoring))

    @property
    def distinct_ratio(self) -> float:
        """Distinct keys / window size over the most recent keys."""
        if not self._recent_keys:
            return 0.0
        return len(set(self._recent_keys)) / len(self._recent_keys)

    def observe(self, key: tuple, *, k: int | None = None) -> bool:
        """Stream one query key; ``True`` when a drift epoch fires."""
        self._recent_keys.append(key)
        if k is not None:
            self.recent_k.append(int(k))
        self._current[key] += 1
        self._count += 1
        if self._count < self.window:
            return False
        current, self._current, self._count = self._current, Counter(), 0
        if self._reference is None:
            self._reference = current
            return False
        self.last_divergence = total_variation(self._reference, current)
        self._reference = current
        if self.last_divergence > self.threshold:
            self.epochs += 1
            return True
        return False


@dataclass
class AdaptiveState:
    """Everything the service's adaptive mode owns, bundled.

    Survives planner rebuilds (snapshot refreshes recreate the planner;
    the feedback store persists so calibration is not lost) and is
    shared by the sync and async submission paths, hence the lock
    around the width controllers map.
    """

    feedback: PlanFeedback
    drift: DriftDetector
    #: keyed by transport, or by ``(transport, signature)`` when the
    #: service scopes widths per workload class
    controllers: dict = field(default_factory=dict)
    overfetch_override: bool | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @classmethod
    def from_policy(cls, policy) -> "AdaptiveState":
        """Build the controllers from a ``ServicePolicy``'s knobs."""
        initial = (
            policy.block_width
            if policy.block_width in WIDTH_LATTICE
            else 1
        )
        state = cls(
            feedback=PlanFeedback(
                min_samples=policy.feedback_min_samples,
                tolerance=policy.feedback_tolerance,
                blend=policy.feedback_blend,
            ),
            drift=DriftDetector(
                window=policy.drift_window,
                threshold=policy.drift_threshold,
            ),
        )
        state._initial_width = initial  # type: ignore[attr-defined]
        return state

    def controller_for(
        self, transport: str, signature: tuple | None = None
    ) -> BlockWidthController:
        """The (lazily created) width controller of one transport.

        With a ``signature`` the controller is further scoped to that
        workload class (the planner's ``plan_signature``): queries of
        different depths tune their own widths independently, so an
        adversarial deep query inside a narrow phase widens *its own*
        block without dragging the narrow queries' width up — and each
        class's stream of records is homogeneous, which is what lets
        the patience guards converge instead of churn.
        """
        key = (transport, signature) if signature is not None else transport
        with self._lock:
            controller = self.controllers.get(key)
            if controller is None:
                controller = BlockWidthController(
                    initial=getattr(self, "_initial_width", 1)
                )
                self.controllers[key] = controller
            return controller

    def width_histogram(self) -> dict[int, int]:
        """Merged width usage across transports (for reports)."""
        merged: Counter[int] = Counter()
        with self._lock:
            for controller in self.controllers.values():
                merged.update(controller.width_histogram)
        return {width: merged[width] for width in sorted(merged)}
