"""Internal node structures of the B+tree.

Two node kinds, as in a textbook B+tree:

* :class:`LeafNode` stores keys with their values and links to the next
  and previous leaves (the paper's linked list of cells);
* :class:`InternalNode` stores separator keys and child pointers; child
  ``i`` holds keys < ``keys[i]``, child ``i+1`` holds keys >= ``keys[i]``.

Nodes are plain containers; all balancing logic lives in
:mod:`repro.btree.tree`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Optional


class Node:
    """Common base for B+tree nodes."""

    __slots__ = ("keys", "parent")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.parent: Optional[InternalNode] = None

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.keys)


class LeafNode(Node):
    """A leaf holding ``keys`` and parallel ``values`` plus leaf links."""

    __slots__ = ("values", "next", "prev")

    def __init__(self) -> None:
        super().__init__()
        self.values: list[Any] = []
        self.next: Optional[LeafNode] = None
        self.prev: Optional[LeafNode] = None

    @property
    def is_leaf(self) -> bool:
        return True

    def find(self, key: Any) -> int | None:
        """Index of ``key`` in this leaf, or ``None`` if absent."""
        idx = bisect_left(self.keys, key)
        if idx < len(self.keys) and self.keys[idx] == key:
            return idx
        return None

    def insert_at(self, idx: int, key: Any, value: Any) -> None:
        self.keys.insert(idx, key)
        self.values.insert(idx, value)

    def remove_at(self, idx: int) -> None:
        del self.keys[idx]
        del self.values[idx]


class InternalNode(Node):
    """An internal node with ``len(children) == len(keys) + 1``."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[Node] = []

    @property
    def is_leaf(self) -> bool:
        return False

    def child_index_for(self, key: Any) -> int:
        """Index of the child subtree that may contain ``key``.

        Separator convention: keys equal to ``keys[i]`` live in child
        ``i + 1`` (right-biased), which matches how splits promote the
        first key of the new right sibling.
        """
        return bisect_right(self.keys, key)

    def index_of_child(self, child: Node) -> int:
        """Position of ``child`` in ``children`` (identity comparison)."""
        for idx, candidate in enumerate(self.children):
            if candidate is child:
                return idx
        raise ValueError("node is not a child of this internal node")

    def insert_child(self, idx: int, key: Any, child: Node) -> None:
        """Insert separator ``key`` at ``idx`` with ``child`` to its right."""
        self.keys.insert(idx, key)
        self.children.insert(idx + 1, child)
        child.parent = self
