"""A from-scratch B+tree.

The paper (Section 5.2.2) manages *seen positions* with a B+tree whose
linked leaves allow the best-position pointer to advance in amortized
O(1).  This package provides a complete, general-purpose B+tree:

* :class:`BPlusTree` — ordered key/value map with ``insert``, ``delete``,
  ``get``, range iteration and successor queries;
* linked leaves exposed through :meth:`BPlusTree.leaf_cells`, which is what
  the best-position tracker walks.

The tree is also usable as an item → position index for
:class:`repro.lists.sorted_list.SortedList` (see ``index_kind="btree"``).
"""

from repro.btree.tree import BPlusTree, LeafCell

__all__ = ["BPlusTree", "LeafCell"]
