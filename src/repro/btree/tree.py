"""A complete in-memory B+tree.

Keys may be any mutually comparable values (positions, item ids, strings).
Values default to ``None`` so the tree doubles as an ordered set, which is
how :class:`repro.core.best_position.BPlusTreeTracker` uses it.

Implementation notes
--------------------
* ``order`` is the maximum number of children of an internal node; both
  leaves and internal nodes hold at most ``order - 1`` keys and (root
  excepted) at least ``(order - 1) // 2`` keys.
* Separator convention is right-biased: a key equal to a separator lives in
  the right subtree (see :meth:`repro.btree.node.InternalNode.child_index_for`).
* Leaves form a doubly linked list, exposed as :class:`LeafCell` cursors so
  callers can replicate the paper's ``bp := bp.next`` walk verbatim.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.btree.node import InternalNode, LeafNode, Node

_MISSING = object()


class LeafCell:
    """A cursor to one `(key, value)` cell of a leaf.

    Mirrors the paper's linked-list cells: ``cell.element`` is the stored
    key and ``cell.next`` the following cell (or ``None`` at the end).
    Cursors are positional snapshots; advancing through ``next`` always
    reflects the tree's current state.
    """

    __slots__ = ("_leaf", "_index")

    def __init__(self, leaf: LeafNode, index: int) -> None:
        self._leaf = leaf
        self._index = index

    @property
    def element(self) -> Any:
        """The key stored in this cell."""
        return self._leaf.keys[self._index]

    @property
    def value(self) -> Any:
        """The value stored in this cell."""
        return self._leaf.values[self._index]

    @property
    def next(self) -> Optional["LeafCell"]:
        """The next cell in key order, or ``None`` if this is the last."""
        if self._index + 1 < len(self._leaf.keys):
            return LeafCell(self._leaf, self._index + 1)
        leaf = self._leaf.next
        while leaf is not None and not leaf.keys:
            leaf = leaf.next
        if leaf is None:
            return None
        return LeafCell(leaf, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LeafCell(element={self.element!r})"


class BPlusTree:
    """An ordered key/value map backed by a B+tree.

    Args:
        order: maximum number of children per internal node (>= 3).
    """

    def __init__(self, order: int = 32) -> None:
        if order < 3:
            raise ValueError(f"B+tree order must be >= 3, got {order}")
        self._order = order
        self._max_keys = order - 1
        self._min_keys = (order - 1) // 2
        self._root: Node = LeafNode()
        self._size = 0

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Maximum number of children per internal node."""
        return self._order

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self._find_leaf(key).find(key) is not None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _find_leaf(self, key: Any) -> LeafNode:
        node = self._root
        while not node.is_leaf:
            assert isinstance(node, InternalNode)
            node = node.children[node.child_index_for(key)]
        assert isinstance(node, LeafNode)
        return node

    def get(self, key: Any, default: Any = None) -> Any:
        """Value stored under ``key``, or ``default`` if absent."""
        leaf = self._find_leaf(key)
        idx = leaf.find(key)
        if idx is None:
            return default
        return leaf.values[idx]

    def __getitem__(self, key: Any) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def min_key(self) -> Any:
        """Smallest key in the tree; raises ``KeyError`` when empty."""
        if not self._size:
            raise KeyError("min_key() on empty B+tree")
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
        return node.keys[0]

    def max_key(self) -> Any:
        """Largest key in the tree; raises ``KeyError`` when empty."""
        if not self._size:
            raise KeyError("max_key() on empty B+tree")
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]  # type: ignore[attr-defined]
        return node.keys[-1]

    def successor(self, key: Any) -> Any:
        """Smallest stored key strictly greater than ``key``.

        Raises ``KeyError`` when no such key exists.
        """
        leaf = self._find_leaf(key)
        for candidate in leaf.keys:
            if candidate > key:
                return candidate
        nxt = leaf.next
        while nxt is not None:
            if nxt.keys:
                return nxt.keys[0]
            nxt = nxt.next
        raise KeyError(f"no key greater than {key!r}")

    def first_cell(self) -> Optional[LeafCell]:
        """Cursor to the smallest key's cell, or ``None`` when empty."""
        if not self._size:
            return None
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
        assert isinstance(node, LeafNode)
        return LeafCell(node, 0)

    def cell_for(self, key: Any) -> Optional[LeafCell]:
        """Cursor to ``key``'s cell, or ``None`` if the key is absent."""
        leaf = self._find_leaf(key)
        idx = leaf.find(key)
        if idx is None:
            return None
        return LeafCell(leaf, idx)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def _first_leaf(self) -> LeafNode:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
        assert isinstance(node, LeafNode)
        return node

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All `(key, value)` pairs in ascending key order."""
        leaf: Optional[LeafNode] = self._first_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def keys(self) -> Iterator[Any]:
        """All keys in ascending order."""
        for key, _value in self.items():
            yield key

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    def range_items(
        self, low: Any = None, high: Any = None, *, inclusive: bool = True
    ) -> Iterator[tuple[Any, Any]]:
        """`(key, value)` pairs with ``low <= key <= high``.

        ``None`` bounds are open; ``inclusive=False`` makes the *high*
        bound exclusive (the low bound is always inclusive).
        """
        if low is None:
            leaf: Optional[LeafNode] = self._first_leaf()
        else:
            leaf = self._find_leaf(low)
        while leaf is not None:
            for key, value in zip(leaf.keys, leaf.values):
                if low is not None and key < low:
                    continue
                if high is not None:
                    if inclusive and key > high:
                        return
                    if not inclusive and key >= high:
                        return
                yield key, value
            leaf = leaf.next

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any = None) -> bool:
        """Insert ``key`` (replacing the value if present).

        Returns ``True`` when a new key was added, ``False`` when an
        existing key's value was replaced.
        """
        leaf = self._find_leaf(key)
        idx = leaf.find(key)
        if idx is not None:
            leaf.values[idx] = value
            return False
        from bisect import bisect_left

        leaf.insert_at(bisect_left(leaf.keys, key), key, value)
        self._size += 1
        if len(leaf.keys) > self._max_keys:
            self._split_leaf(leaf)
        return True

    def __setitem__(self, key: Any, value: Any) -> None:
        self.insert(key, value)

    def _split_leaf(self, leaf: LeafNode) -> None:
        mid = len(leaf.keys) // 2
        right = LeafNode()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        self._insert_into_parent(leaf, right.keys[0], right)

    def _split_internal(self, node: InternalNode) -> None:
        mid = len(node.keys) // 2
        promoted = node.keys[mid]
        right = InternalNode()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        for child in right.children:
            child.parent = right
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._insert_into_parent(node, promoted, right)

    def _insert_into_parent(self, left: Node, key: Any, right: Node) -> None:
        parent = left.parent
        if parent is None:
            root = InternalNode()
            root.keys = [key]
            root.children = [left, right]
            left.parent = root
            right.parent = root
            self._root = root
            return
        idx = parent.index_of_child(left)
        parent.insert_child(idx, key, right)
        if len(parent.keys) > self._max_keys:
            self._split_internal(parent)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns ``True`` if it was present."""
        leaf = self._find_leaf(key)
        idx = leaf.find(key)
        if idx is None:
            return False
        leaf.remove_at(idx)
        self._size -= 1
        if leaf.parent is not None and len(leaf.keys) < self._min_keys:
            self._rebalance_leaf(leaf)
        return True

    def __delitem__(self, key: Any) -> None:
        if not self.delete(key):
            raise KeyError(key)

    def pop(self, key: Any, default: Any = _MISSING) -> Any:
        """Remove ``key`` and return its value (or ``default``)."""
        leaf = self._find_leaf(key)
        idx = leaf.find(key)
        if idx is None:
            if default is _MISSING:
                raise KeyError(key)
            return default
        value = leaf.values[idx]
        leaf.remove_at(idx)
        self._size -= 1
        if leaf.parent is not None and len(leaf.keys) < self._min_keys:
            self._rebalance_leaf(leaf)
        return value

    def _siblings(self, node: Node) -> tuple[Optional[Node], Optional[Node], int]:
        """Left sibling, right sibling and the node's child index."""
        parent = node.parent
        assert parent is not None
        idx = parent.index_of_child(node)
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None
        return left, right, idx

    def _rebalance_leaf(self, leaf: LeafNode) -> None:
        parent = leaf.parent
        assert parent is not None
        left, right, idx = self._siblings(leaf)

        if isinstance(left, LeafNode) and len(left.keys) > self._min_keys:
            # Borrow the largest entry of the left sibling.
            leaf.insert_at(0, left.keys[-1], left.values[-1])
            left.remove_at(len(left.keys) - 1)
            parent.keys[idx - 1] = leaf.keys[0]
            return
        if isinstance(right, LeafNode) and len(right.keys) > self._min_keys:
            # Borrow the smallest entry of the right sibling.
            leaf.insert_at(len(leaf.keys), right.keys[0], right.values[0])
            right.remove_at(0)
            parent.keys[idx] = right.keys[0]
            return

        if isinstance(left, LeafNode):
            self._merge_leaves(left, leaf, idx - 1)
        else:
            assert isinstance(right, LeafNode)
            self._merge_leaves(leaf, right, idx)

    def _merge_leaves(self, left: LeafNode, right: LeafNode, sep_idx: int) -> None:
        """Fold ``right`` into ``left`` and drop separator ``sep_idx``."""
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.next = right.next
        if right.next is not None:
            right.next.prev = left
        parent = left.parent
        assert parent is not None
        del parent.keys[sep_idx]
        del parent.children[sep_idx + 1]
        self._after_internal_shrink(parent)

    def _after_internal_shrink(self, node: InternalNode) -> None:
        if node.parent is None:
            # Root: collapse when it has a single child left.
            if not node.keys and len(node.children) == 1:
                self._root = node.children[0]
                self._root.parent = None
            return
        if len(node.keys) >= self._min_keys:
            return
        self._rebalance_internal(node)

    def _rebalance_internal(self, node: InternalNode) -> None:
        parent = node.parent
        assert parent is not None
        left, right, idx = self._siblings(node)

        if isinstance(left, InternalNode) and len(left.keys) > self._min_keys:
            # Rotate right through the parent separator.
            node.keys.insert(0, parent.keys[idx - 1])
            child = left.children.pop()
            child.parent = node
            node.children.insert(0, child)
            parent.keys[idx - 1] = left.keys.pop()
            return
        if isinstance(right, InternalNode) and len(right.keys) > self._min_keys:
            # Rotate left through the parent separator.
            node.keys.append(parent.keys[idx])
            child = right.children.pop(0)
            child.parent = node
            node.children.append(child)
            parent.keys[idx] = right.keys.pop(0)
            return

        if isinstance(left, InternalNode):
            self._merge_internals(left, node, idx - 1)
        else:
            assert isinstance(right, InternalNode)
            self._merge_internals(node, right, idx)

    def _merge_internals(
        self, left: InternalNode, right: InternalNode, sep_idx: int
    ) -> None:
        parent = left.parent
        assert parent is not None
        left.keys.append(parent.keys[sep_idx])
        left.keys.extend(right.keys)
        for child in right.children:
            child.parent = left
        left.children.extend(right.children)
        del parent.keys[sep_idx]
        del parent.children[sep_idx + 1]
        self._after_internal_shrink(parent)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
            levels += 1
        return levels

    def validate(self) -> None:
        """Check every structural invariant; raises ``AssertionError``.

        Used by the test suite after random operation sequences.
        """
        leaves: list[LeafNode] = []
        self._validate_node(self._root, None, None, leaves, is_root=True)

        # Leaf-link chain must visit exactly the leaves found by descent.
        chain: list[LeafNode] = []
        leaf = self._first_leaf()
        while leaf is not None:
            chain.append(leaf)
            if leaf.next is not None:
                assert leaf.next.prev is leaf, "broken prev link"
            leaf = leaf.next
        assert [id(x) for x in chain] == [id(x) for x in leaves], "leaf chain mismatch"

        total = sum(len(leaf.keys) for leaf in leaves)
        assert total == self._size, f"size mismatch: {total} != {self._size}"

        flattened = [key for leaf in leaves for key in leaf.keys]
        assert flattened == sorted(flattened), "keys out of order"
        assert len(set(flattened)) == len(flattened), "duplicate keys"

    def _validate_node(
        self,
        node: Node,
        low: Any,
        high: Any,
        leaves: list[LeafNode],
        *,
        is_root: bool,
    ) -> int:
        assert node.keys == sorted(node.keys), "node keys unsorted"
        for key in node.keys:
            if low is not None:
                assert key >= low, "key below lower bound"
            if high is not None:
                assert key < high, "key above upper bound"
        if node.is_leaf:
            assert isinstance(node, LeafNode)
            if not is_root:
                assert len(node.keys) >= self._min_keys, "leaf underflow"
            assert len(node.keys) <= self._max_keys, "leaf overflow"
            leaves.append(node)
            return 1
        assert isinstance(node, InternalNode)
        if not is_root:
            assert len(node.keys) >= self._min_keys, "internal underflow"
        assert len(node.keys) <= self._max_keys, "internal overflow"
        assert len(node.children) == len(node.keys) + 1, "child count mismatch"
        depths = set()
        bounds = [low, *node.keys, high]
        for i, child in enumerate(node.children):
            assert child.parent is node, "broken parent pointer"
            depths.add(
                self._validate_node(
                    child, bounds[i], bounds[i + 1], leaves, is_root=False
                )
            )
        assert len(depths) == 1, "leaves at different depths"
        return depths.pop() + 1
