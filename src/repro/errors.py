"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DatabaseError(ReproError):
    """A database (set of sorted lists) is malformed."""


class InconsistentListsError(DatabaseError):
    """The lists of a database do not range over the same item set."""


class DuplicateItemError(DatabaseError):
    """An item appears more than once inside a single sorted list."""


class UnknownItemError(DatabaseError, KeyError):
    """A random access referenced an item that is not in the list."""


class InvalidPositionError(DatabaseError, IndexError):
    """A direct access referenced a position outside ``1..n``."""


class ExhaustedListError(DatabaseError):
    """A sorted access was attempted past the end of a list."""


class ScoringError(ReproError):
    """A scoring function was invalid for the requested operation."""


class NonMonotonicScoringError(ScoringError):
    """A scoring function violated the monotonicity requirement.

    TA, BPA and BPA2 are only correct for monotonic scoring functions
    (paper, Section 2); the library checks cheap necessary conditions and
    raises this error when a violation is detected.
    """


class InvalidQueryError(ReproError):
    """A top-k query had invalid parameters (e.g. ``k < 1`` or ``k > n``)."""


class GenerationError(ReproError):
    """A synthetic database generator received unsatisfiable parameters."""


class DistributedError(ReproError):
    """A failure in the simulated distributed execution layer."""


class ProtocolError(DistributedError):
    """A node received a message it cannot handle in its current state."""


class ServiceError(ReproError):
    """A failure inside the query-service layer."""


class ShardMergeError(ServiceError):
    """The shard-merge exactness certificate was violated.

    A truncated shard's k'-th returned entry outranked the merged k-th
    entry, which is impossible when every shard returned its exact
    top-k' — this always indicates a shard under-returned (a bug), never
    bad input, and the merge raises rather than serve a wrong answer.
    """


class StorageError(ReproError):
    """A failure in the on-disk list storage layer."""


class CorruptFileError(StorageError):
    """A database file failed validation (bad magic, version or size)."""
