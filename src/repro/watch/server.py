"""Server push over the socket transport: long-lived subscriptions.

:class:`WatchServer` wraps one :class:`~repro.service.QueryService`
behind a threaded TCP endpoint speaking the transport's length-prefixed
JSON frames (:mod:`repro.distributed.socket_transport`).  Request kinds:

=============  =====================================================
``watch``      register a standing query; replies ``watched`` with
               the subscription id and the initial ranked answer
``unwatch``    cancel a subscription this connection owns; replies
               ``unwatched``
``query``      one request/response submit (the naive re-query
               baseline the watch benchmark compares against);
               replies ``result``
``sync``       barrier: replies ``synced`` with the current epoch —
               because each connection is FIFO, every delta pushed
               *before* the reply was sent is already in flight ahead
               of it, so a client that reads up to ``synced`` has
               drained all deltas of preceding mutations
=============  =====================================================

Pushes are ``delta`` frames (:meth:`ResultDelta.to_wire
<repro.watch.frames.ResultDelta.to_wire>`), sent synchronously from
inside the mutation call.  A per-connection send lock keeps frames
atomic between the pushing mutator thread and the replying connection
thread; :attr:`WatchServer.lock` serializes all service/database access
— connection threads take it around every service call, and **any
thread mutating the served database must hold it too** (the CLI's
serve loop and the benchmark do).  Lock order is always service lock →
connection send lock.  A client that stops reading eventually blocks
the pushing mutator on the socket buffer — standing queries assume a
live consumer; dead peers are detected by send failure and cancelled.
"""

from __future__ import annotations

import socket
import threading

from repro.bench.batch import QuerySpec
from repro.distributed.socket_transport import recv_frame, send_frame
from repro.errors import ProtocolError, ReproError
from repro.scoring import AVERAGE, MAX, MIN, SUM

#: Scoring functions addressable from the wire, by name.
WIRE_SCORINGS = {
    "sum": SUM,
    "min": MIN,
    "max": MAX,
    "average": AVERAGE,
}


def spec_from_wire(payload: dict) -> QuerySpec:
    """Decode a query spec from a ``watch``/``query`` payload."""
    name = str(payload.get("scoring", "sum"))
    scoring = WIRE_SCORINGS.get(name)
    if scoring is None:
        raise ProtocolError(
            f"unknown scoring {name!r}; expected one of "
            f"{sorted(WIRE_SCORINGS)}"
        )
    try:
        k = int(payload.get("k", 10))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad k: {payload.get('k')!r}") from exc
    return QuerySpec(
        algorithm=str(payload.get("algorithm", "auto")), k=k, scoring=scoring
    )


def _wire_items(entries) -> list:
    return [[entry.item, entry.score] for entry in entries]


class WatchServer:
    """One service behind a push-capable TCP endpoint.

    Use as a context manager, or :meth:`start` / :meth:`close`.  The
    server binds immediately (so :attr:`port` is known before
    :meth:`start`), accepts on a daemon thread, and spawns one daemon
    thread per connection.
    """

    def __init__(
        self, service, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        #: serializes every touch of the service and its database.
        self.lock = threading.RLock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()[:2]
        self._closed = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "WatchServer":
        """Begin accepting connections (idempotent)."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="watch-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, drop every connection (idempotent)."""
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            # Closing a socket does not interrupt a thread blocked in
            # accept() on it; shutdown() does, waking the accept loop
            # so the join below is immediate instead of timing out.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        for conn in tuple(self._connections):
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "WatchServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="watch-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        send_lock = threading.Lock()
        owned: dict[int, object] = {}  #: subscription id -> Subscription
        try:
            while True:
                request, _size = recv_frame(conn)
                if request is None:
                    return  # clean hangup
                kind = request.get("kind")
                payload = request.get("payload") or {}
                try:
                    reply = self._handle(
                        kind, payload, conn, send_lock, owned
                    )
                except ProtocolError as exc:
                    reply = {"kind": "error", "error": str(exc)}
                except ReproError as exc:
                    reply = {
                        "kind": "error",
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                if reply is not None:
                    with send_lock:
                        send_frame(conn, reply)
        except (ProtocolError, ConnectionError, OSError):
            return  # hostile or vanished peer: drop the connection
        finally:
            with self.lock:
                for subscription in owned.values():
                    subscription.cancel()
            self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _handle(self, kind, payload, conn, send_lock, owned) -> dict | None:
        if kind == "watch":
            spec = spec_from_wire(payload)
            deliver = self._pusher(conn, send_lock, owned)
            # Register and reply under the service lock: no mutation can
            # interleave, so the `watched` frame precedes every delta of
            # this subscription on the wire.
            with self.lock:
                subscription = self.service.watch(spec, callback=deliver)
                owned[subscription.id] = subscription
                with send_lock:
                    send_frame(
                        conn,
                        {
                            "kind": "watched",
                            "subscription": subscription.id,
                            "epoch": subscription.epoch,
                            "seq": subscription.seq,
                            "items": _wire_items(subscription.entries),
                        },
                    )
            return None
        if kind == "unwatch":
            try:
                wanted = int(payload["subscription"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"unwatch needs a subscription id: {exc}"
                ) from exc
            with self.lock:
                subscription = owned.pop(wanted, None)
                if subscription is None:
                    raise ProtocolError(
                        f"connection owns no subscription {wanted}"
                    )
                subscription.cancel()
            return {"kind": "unwatched", "subscription": wanted}
        if kind == "query":
            spec = spec_from_wire(payload)
            with self.lock:
                served = self.service.submit(spec)
            return {
                "kind": "result",
                "epoch": served.stats.epoch,
                "cache_outcome": served.stats.cache_outcome,
                "items": _wire_items(served.result.items),
            }
        if kind == "sync":
            with self.lock:
                return {"kind": "synced", "epoch": self.service.epoch}
        raise ProtocolError(f"unknown request kind {kind!r}")

    def _pusher(self, conn, send_lock, owned):
        def deliver(delta) -> None:
            try:
                with send_lock:
                    send_frame(conn, delta.to_wire())
            except OSError:
                # The peer is gone; stop maintaining its subscription.
                # (Runs inside the mutation call, under the service
                # lock, so the cancel is race-free.)
                subscription = owned.pop(delta.subscription, None)
                if subscription is not None:
                    subscription.cancel()

        return deliver

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed.is_set() else "open"
        return f"<WatchServer {self.host}:{self.port} {state}>"
