"""One standing query's client-side handle and maintained state.

A :class:`Subscription` is what :meth:`QueryService.watch
<repro.service.QueryService.watch>` returns: the live ranked answer
(:attr:`entries`), the delta stream (delivered synchronously to a
``callback``, or queued for :meth:`poll`), per-outcome maintenance
counters, and :meth:`cancel`.  The
:class:`~repro.watch.manager.SubscriptionManager` owns the maintenance
logic; the subscription is deliberately dumb state so the manager's
classification per mutation stays the single source of truth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.watch.frames import ResultDelta

#: Per-mutation maintenance outcomes, in decreasing order of luck —
#: the standing-query mirror of the cache's lookup outcomes
#: (``hit``/``revalidated`` collapse to ``unchanged``: a mutation the
#: certificate proves harmless costs no work and no push).
WATCH_OUTCOMES = ("unchanged", "patched", "recomputed")


@dataclass
class WatchStats:
    """Counters over one subscription's lifetime."""

    unchanged: int = 0  #: mutations proven harmless — no work, no push
    patched: int = 0  #: answers repaired in place from the event's scores
    recomputed: int = 0  #: answers re-planned through the service
    deltas: int = 0  #: deltas actually pushed (visible changes only)

    @property
    def mutations(self) -> int:
        """Mutations this subscription was maintained through."""
        return self.unchanged + self.patched + self.recomputed


class Subscription:
    """A standing top-k query's handle.

    Deltas are delivered synchronously, in mutation order: to
    ``callback`` when one was given (exceptions propagate to the
    mutator — a push failure there typically means the peer is gone and
    the manager cancels the subscription), otherwise onto an internal
    queue drained by :meth:`poll`.
    """

    def __init__(
        self,
        subscription_id: int,
        spec,
        *,
        entries: Sequence,
        epoch: int,
        exact: bool,
        callback: Callable[[ResultDelta], None] | None,
        on_cancel: Callable[["Subscription"], None],
    ) -> None:
        self.id = subscription_id
        self.spec = spec
        self.stats = WatchStats()
        self._entries = tuple(entries)
        self._epoch = epoch
        self._seq = 0
        self._exact = exact
        self._callback = callback
        self._on_cancel = on_cancel
        self._pending: deque[ResultDelta] = deque()
        self._active = True

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    @property
    def entries(self) -> tuple:
        """The maintained ranked answer, best first."""
        return self._entries

    @property
    def item_ids(self) -> tuple:
        """The maintained item ids, best first."""
        return tuple(entry.item for entry in self._entries)

    @property
    def scores(self) -> tuple:
        """The maintained overall scores, best first."""
        return tuple(entry.score for entry in self._entries)

    @property
    def epoch(self) -> int:
        """The data epoch the answer currently reflects."""
        return self._epoch

    @property
    def seq(self) -> int:
        """Sequence number of the last delta (0: initial answer)."""
        return self._seq

    @property
    def active(self) -> bool:
        """Whether the subscription is still maintained."""
        return self._active

    def poll(self) -> list[ResultDelta]:
        """Drain queued deltas (empty unless no callback was given)."""
        drained = list(self._pending)
        self._pending.clear()
        return drained

    def cancel(self) -> None:
        """Stop maintenance and release the manager slot (idempotent)."""
        if not self._active:
            return
        self._active = False
        self._on_cancel(self)

    # ------------------------------------------------------------------
    # Manager surface
    # ------------------------------------------------------------------

    def _advance(self, epoch: int) -> None:
        """Re-stamp the answer to ``epoch`` without a visible change."""
        self._epoch = epoch

    def _apply(self, delta: ResultDelta, entries: tuple) -> None:
        """Commit a visible change and deliver its delta."""
        self._entries = entries
        self._seq = delta.seq
        self._epoch = delta.epoch
        self.stats.deltas += 1
        if self._callback is not None:
            self._callback(delta)
        else:
            self._pending.append(delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._active else "cancelled"
        return (
            f"<Subscription #{self.id} {state} k={self.spec.k} "
            f"seq={self._seq} epoch={self._epoch}>"
        )
