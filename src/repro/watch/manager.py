"""Incremental maintenance of standing top-k queries.

The :class:`SubscriptionManager` sits on the service's mutation hook:
every committed :class:`~repro.dynamic.database.MutationEvent` is
classified against each live subscription's maintained answer through
the shared k-th-entry certificate (:mod:`repro.exec.certify`), giving
one of three outcomes per subscription:

* **unchanged** — the touched item provably cannot enter, exit or move
  the answer.  No work, no push.
* **patched** — at most ``patch_limit`` touched items are re-scored
  *from the event's own score vectors* and re-merged in place.  The
  event's vectors are the item's exact post-mutation state — the
  service's columnar snapshot is stale between mutations and must not
  be consulted here.
* **recomputed** — a certificate-breaking delta (member removed while
  full, the patched boundary weakening, non-exact scores): the spec is
  re-planned through the normal service submit path, which also
  refreshes the snapshot.

Either way the subscription only *pushes* when the visible answer
actually changed: the new answer is diffed against the old
(:func:`repro.watch.frames.diff_results`) and an empty edit pushes
nothing — the communication-competitive monitoring behavior the paper
setting motivates (a standing query's cost is proportional to how often
its answer moves, not to how often the data does).

**Underfull answers are exhaustive.**  A maintained answer holding
fewer than ``k`` items contains *every* item in the database, so the
manager reasons about it in certify's exhaustive mode: member removals
and fresh inserts stay fully decidable with no boundary at all — unlike
the result cache, which must miss on underfull entries because a cached
answer cannot prove it still covers the whole item set.
"""

from __future__ import annotations

from typing import Callable, FrozenSet

from repro.errors import ServiceError
from repro.exec import certify
from repro.exec.merge import entry_key
from repro.watch.frames import ResultDelta, diff_results
from repro.watch.subscription import Subscription


class SubscriptionManager:
    """Owns every live subscription of one service.

    Args:
        submit: the service's submit path (``spec -> ServiceResult``) —
            the recompute fallback and the initial answer source.
        exact_algorithms: algorithm names whose result scores are exact
            overall aggregates (the certificate's precondition); a
            subscription whose answer came from any other algorithm is
            recomputed on every mutation instead of certified.
        patch_limit: most touched items one in-place repair may
            re-score.
        max_subscriptions: hard cap on concurrently live subscriptions
            (:meth:`watch` raises :class:`ServiceError` beyond it).
        counters: optional object with ``watch_unchanged`` /
            ``watch_patched`` / ``watch_recomputed`` / ``watch_deltas``
            attributes (the service's lifetime counters).
    """

    def __init__(
        self,
        *,
        submit: Callable,
        exact_algorithms: FrozenSet[str],
        patch_limit: int = 8,
        max_subscriptions: int = 64,
        counters=None,
    ) -> None:
        self._submit = submit
        self._exact = frozenset(exact_algorithms)
        self._patch_limit = patch_limit
        self._max = max_subscriptions
        self._counters = counters
        self._subscriptions: dict[int, Subscription] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._subscriptions)

    @property
    def subscriptions(self) -> tuple[Subscription, ...]:
        """The live subscriptions, in registration order."""
        return tuple(self._subscriptions.values())

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def watch(self, spec, *, callback=None) -> Subscription:
        """Register a standing query; the initial answer is computed now."""
        if len(self._subscriptions) >= self._max:
            raise ServiceError(
                f"subscription limit reached ({self._max}); cancel one "
                "or raise ServicePolicy.max_subscriptions"
            )
        served = self._submit(spec)
        subscription = Subscription(
            self._next_id,
            spec,
            entries=served.result.items,
            epoch=served.stats.epoch,
            exact=self._exact_answer(served.result),
            callback=callback,
            on_cancel=self._unregister,
        )
        self._next_id += 1
        self._subscriptions[subscription.id] = subscription
        return subscription

    def _unregister(self, subscription: Subscription) -> None:
        self._subscriptions.pop(subscription.id, None)

    def cancel_all(self) -> None:
        """Cancel every live subscription (service shutdown)."""
        for subscription in self.subscriptions:
            subscription.cancel()

    def _exact_answer(self, result) -> bool:
        # An empty answer has no scores to be inexact about; certify's
        # exhaustive mode maintains it regardless of the algorithm, and
        # exactness is re-derived at the next recompute.
        return result.algorithm in self._exact or not result.items

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def on_mutation(self, event, epoch: int) -> None:
        """Maintain every live subscription through one committed event."""
        for subscription in self.subscriptions:
            if subscription.active:
                self._maintain(subscription, event, epoch)

    def on_invalidate(self, epoch: int) -> None:
        """An epoch bump with no event record: recompute everything."""
        for subscription in self.subscriptions:
            if subscription.active:
                self._recompute(subscription, epoch)

    def _maintain(self, subscription: Subscription, event, epoch: int) -> None:
        vectors_ok = (
            event.new_scores is not None or event.kind == "remove_item"
        )
        if not subscription._exact or not vectors_ok:
            self._recompute(subscription, epoch)
            return
        spec = subscription.spec
        entries = subscription.entries
        exhaustive = len(entries) < spec.k
        boundary = entry_key(entries[-1]) if not exhaustive else None
        members = {entry.item: entry.score for entry in entries}
        verdict, touched = certify.classify_delta(
            members,
            boundary,
            (event,),
            spec.scoring,
            patch_limit=self._patch_limit,
            exhaustive=exhaustive,
        )
        if verdict == certify.UNCHANGED:
            subscription.stats.unchanged += 1
            self._count("watch_unchanged")
            subscription._advance(epoch)
            return
        if verdict == certify.PATCH:
            # Re-score from the event's own vectors: they are the exact
            # post-mutation state, while the service snapshot is stale
            # until the next submit refreshes it.
            folded = {event.item: event.new_scores}
            merged = certify.patch_entries(
                entries,
                touched,
                boundary,
                spec.scoring,
                lambda _items: folded,
                k=spec.k,
                exhaustive=exhaustive,
            )
            if merged is not None:
                subscription.stats.patched += 1
                self._count("watch_patched")
                self._commit(subscription, merged, epoch, cause="patched")
                return
        self._recompute(subscription, epoch)

    def _recompute(self, subscription: Subscription, epoch: int) -> None:
        served = self._submit(subscription.spec)
        subscription._exact = self._exact_answer(served.result)
        subscription.stats.recomputed += 1
        self._count("watch_recomputed")
        self._commit(
            subscription, served.result.items, epoch, cause="recomputed"
        )

    def _commit(
        self, subscription: Subscription, entries: tuple, epoch: int, *, cause: str
    ) -> None:
        exits, upserts = diff_results(subscription.entries, entries)
        if not exits and not upserts:
            subscription._advance(epoch)
            return
        delta = ResultDelta(
            subscription=subscription.id,
            seq=subscription.seq + 1,
            epoch=epoch,
            cause=cause,
            exits=exits,
            upserts=upserts,
        )
        self._count("watch_deltas")
        subscription._apply(delta, entries)

    def _count(self, name: str) -> None:
        if self._counters is not None:
            setattr(self._counters, name, getattr(self._counters, name) + 1)
