"""Pushed-delta maintenance vs naive re-query-per-epoch, measured.

The monitoring claim is about communication: a standing query's wire
cost should track how often its *answer* moves, not how often the data
does.  :func:`watch_speedup` measures both modes over the identical
seeded mutation stream, through the real socket protocol:

* **watch** — ``subscribers`` clients hold one subscription each; per
  mutation the server pushes only boundary-crossing deltas.  Every
  client mirror is verified bit-identical to the brute-force top-k of
  the current state after every single mutation, and the delta stream
  replay *is* the mirror — so verification covers reconstruction.
* **naive** — the same clients instead re-query after every mutation
  (one ``query`` request/response round trip each), the only mode the
  pre-watch service offered.

Both passes verify against the oracle outside the timed path.  The
report (``reports/watch_speedup.json``) carries messages, bytes and
wall-clock per mode plus their ratios; the watch pass's ``sync``
barrier frames are measurement apparatus and accounted separately,
never in the push totals.
"""

from __future__ import annotations

import time
from contextlib import ExitStack

import numpy as np

from repro.datagen import make_generator
from repro.service.service import QueryService
from repro.service.workload import (
    WorkloadMutator,
    answers_match,
    dynamic_from,
)
from repro.watch.client import WatchClient
from repro.watch.server import WIRE_SCORINGS, WatchServer


def _fresh_setup(generator: str, n: int, m: int, seed: int):
    static = make_generator(generator).generate(n, m, seed=seed)
    source = dynamic_from(static)
    service = QueryService(source, shards=1, pool="serial")
    return source, service


def watch_speedup(
    *,
    generator: str = "uniform",
    n: int = 400,
    m: int = 3,
    seed: int = 11,
    subscribers: int = 4,
    mutations: int = 150,
    k: int = 10,
    algorithm: str = "bpa2",
    scoring: str = "sum",
    verify: bool = True,
) -> dict:
    """Measure push-maintenance vs re-query over one mutation stream."""
    if scoring not in WIRE_SCORINGS:
        raise ValueError(
            f"unknown scoring {scoring!r}; expected one of "
            f"{sorted(WIRE_SCORINGS)}"
        )
    scoring_fn = WIRE_SCORINGS[scoring]

    # ------------------------------------------------------------- watch
    source, service = _fresh_setup(generator, n, m, seed)
    watch_seconds = 0.0
    watch_mismatches = 0
    with service, WatchServer(service) as server, ExitStack() as stack:
        clients = [
            stack.enter_context(WatchClient(server.port))
            for _ in range(subscribers)
        ]
        handles = [
            client.watch(algorithm=algorithm, k=k, scoring=scoring)
            for client in clients
        ]
        mutator = WorkloadMutator(source, np.random.default_rng(seed + 1))
        for _step in range(mutations):
            started = time.perf_counter()
            with server.lock:
                mutator.apply_one()
            for client in clients:
                client.sync()
                client.drain()
            watch_seconds += time.perf_counter() - started
            if verify:
                with server.lock:
                    for handle in handles:
                        if not answers_match(
                            handle.item_ids,
                            handle.scores,
                            source,
                            k,
                            scoring_fn,
                        ):
                            watch_mismatches += 1
        delta_messages = sum(client.pushed_deltas for client in clients)
        delta_bytes = sum(client.pushed_bytes for client in clients)
        # sync requests + replies: 2 frames per mutation per client.
        barrier_messages = 2 * mutations * len(clients)
        barrier_bytes = sum(
            client.sent_bytes + client.received_bytes for client in clients
        )
        counters = service.counters
        watch_report = {
            "seconds": watch_seconds,
            "messages": delta_messages,
            "bytes": delta_bytes,
            "deltas_applied": sum(h.deltas_applied for h in handles),
            "barrier_messages": barrier_messages,
            "barrier_bytes": barrier_bytes,
            "outcomes": {
                "unchanged": counters.watch_unchanged,
                "patched": counters.watch_patched,
                "recomputed": counters.watch_recomputed,
                "deltas": counters.watch_deltas,
            },
            "verified": (watch_mismatches == 0) if verify else None,
            "mismatches": watch_mismatches if verify else None,
        }

    # ------------------------------------------------------------- naive
    source, service = _fresh_setup(generator, n, m, seed)
    naive_seconds = 0.0
    naive_mismatches = 0
    with service, WatchServer(service) as server, ExitStack() as stack:
        clients = [
            stack.enter_context(WatchClient(server.port))
            for _ in range(subscribers)
        ]
        mutator = WorkloadMutator(source, np.random.default_rng(seed + 1))
        answers = [None] * len(clients)
        for _step in range(mutations):
            started = time.perf_counter()
            with server.lock:
                mutator.apply_one()
            for index, client in enumerate(clients):
                _epoch, answers[index] = client.query(
                    algorithm=algorithm, k=k, scoring=scoring
                )
            naive_seconds += time.perf_counter() - started
            if verify:
                with server.lock:
                    for entries in answers:
                        if not answers_match(
                            tuple(e.item for e in entries),
                            tuple(e.score for e in entries),
                            source,
                            k,
                            scoring_fn,
                        ):
                            naive_mismatches += 1
        naive_report = {
            "seconds": naive_seconds,
            # one request + one response frame per query:
            "messages": 2 * mutations * len(clients),
            "bytes": sum(
                client.sent_bytes + client.received_bytes
                for client in clients
            ),
            "verified": (naive_mismatches == 0) if verify else None,
            "mismatches": naive_mismatches if verify else None,
        }

    def _ratio(a: float, b: float) -> float:
        return a / b if b > 0 else float("inf")

    return {
        "config": {
            "generator": generator,
            "n": n,
            "m": m,
            "seed": seed,
            "subscribers": subscribers,
            "mutations": mutations,
            "k": k,
            "algorithm": algorithm,
            "scoring": scoring,
            "mutation_rate_per_query": 1.0,  # naive re-queries per mutation
        },
        "watch": watch_report,
        "naive": naive_report,
        "speedup": {
            "messages": _ratio(naive_report["messages"], delta_messages),
            "bytes": _ratio(naive_report["bytes"], delta_bytes),
            "wallclock": _ratio(naive_seconds, watch_seconds),
        },
        "verified": (
            (watch_mismatches == 0 and naive_mismatches == 0)
            if verify
            else None
        ),
    }
