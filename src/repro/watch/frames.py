"""Result deltas: the unit a standing query pushes to its watchers.

A :class:`ResultDelta` describes one visible change of a maintained
top-k as the minimal edit from the previous answer: the items that
*exit*, plus an *upsert* ``(rank, item, score)`` for every item whose
final rank or score differs — entries, re-ranks and re-scores are all
upserts, distinguished only by whether the item was already present.
Deltas carry a per-subscription sequence number and the data epoch they
advance to, so a client can detect gaps and replay the stream from the
initial answer to reconstruct the current result bit for bit
(:func:`apply_delta`; the differential suite proves the round trip).

:func:`diff_results` is the inverse — it computes the minimal delta
between two ranked answers, and returns an *empty* edit when nothing
visibly changed (the manager then pushes nothing at all: an unchanged
answer costs zero wire bytes, the monitoring win this subsystem is
for).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ProtocolError
from repro.types import ItemId, Score, ScoredItem

#: What forced the re-evaluation that produced a delta — mirrors the
#: cache's outcome vocabulary (``patched``/``miss``): ``patched`` means
#: the touched items were re-scored and re-merged in place,
#: ``recomputed`` means the query re-planned through the service.
DELTA_CAUSES = ("initial", "patched", "recomputed")


@dataclass(frozen=True, slots=True)
class DeltaEntry:
    """One upsert: ``item`` now sits at ``rank`` (0-based) with ``score``."""

    rank: int
    item: ItemId
    score: Score


@dataclass(frozen=True, slots=True)
class ResultDelta:
    """One visible change of a maintained top-k answer.

    ``seq`` numbers the subscription's deltas from 1 (the initial answer
    is seq 0); ``epoch`` is the service data epoch the answer now
    reflects.  ``exits`` lists items leaving the answer; ``upserts``
    carry the final ``(rank, item, score)`` of every entering or moving
    item, in ascending rank order.
    """

    subscription: int
    seq: int
    epoch: int
    cause: str
    exits: tuple[ItemId, ...]
    upserts: tuple[DeltaEntry, ...]

    def to_wire(self) -> dict:
        """The push frame body (see the socket transport's wire format)."""
        return {
            "kind": "delta",
            "subscription": self.subscription,
            "seq": self.seq,
            "epoch": self.epoch,
            "cause": self.cause,
            "exits": list(self.exits),
            "upserts": [[u.rank, u.item, u.score] for u in self.upserts],
        }

    @classmethod
    def from_wire(cls, message: dict) -> "ResultDelta":
        """Decode a push frame; raises :class:`ProtocolError` if malformed."""
        try:
            return cls(
                subscription=int(message["subscription"]),
                seq=int(message["seq"]),
                epoch=int(message["epoch"]),
                cause=str(message["cause"]),
                exits=tuple(int(item) for item in message["exits"]),
                upserts=tuple(
                    DeltaEntry(rank=int(rank), item=int(item), score=score)
                    for rank, item, score in message["upserts"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed delta frame: {exc}") from exc


def diff_results(
    old: Sequence[ScoredItem], new: Sequence[ScoredItem]
) -> tuple[tuple[ItemId, ...], tuple[DeltaEntry, ...]]:
    """The minimal edit turning ranked answer ``old`` into ``new``.

    Scores compare bitwise — the maintained answer's floats are exact
    aggregates, so a changed float *is* a changed answer.  Both outputs
    empty means the answers are identical and no delta need be pushed.
    """
    new_items = {entry.item for entry in new}
    old_index = {
        entry.item: (rank, entry.score) for rank, entry in enumerate(old)
    }
    exits = tuple(
        entry.item for entry in old if entry.item not in new_items
    )
    upserts = tuple(
        DeltaEntry(rank=rank, item=entry.item, score=entry.score)
        for rank, entry in enumerate(new)
        if old_index.get(entry.item) != (rank, entry.score)
    )
    return exits, upserts


def apply_delta(
    entries: Sequence[ScoredItem], delta: ResultDelta
) -> tuple[ScoredItem, ...]:
    """Replay one delta onto a ranked answer.

    Kept items (neither exiting nor upserted) preserve their relative
    order; each upsert is then inserted at its final rank, ascending.
    Every insertion's target rank is within bounds by construction —
    before the ``i``-th insertion the list holds ``kept + i - 1``
    entries, and a valid delta's ``i``-th upsert rank never exceeds
    that — so replaying a manager-produced stream reconstructs the
    maintained answer exactly.
    """
    dropped = set(delta.exits)
    dropped.update(upsert.item for upsert in delta.upserts)
    result = [entry for entry in entries if entry.item not in dropped]
    for upsert in sorted(delta.upserts, key=lambda u: u.rank):
        if upsert.rank > len(result):
            raise ProtocolError(
                f"delta seq {delta.seq} upserts rank {upsert.rank} "
                f"into a {len(result)}-entry answer"
            )
        result.insert(
            upsert.rank, ScoredItem(item=upsert.item, score=upsert.score)
        )
    return tuple(result)
