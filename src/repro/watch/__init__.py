"""Standing top-k queries: subscriptions, incremental maintenance, push.

The request/response stacks answer "what is the top-k *now*?"; this
package answers "tell me whenever it *changes*".
:meth:`QueryService.watch <repro.service.QueryService.watch>` registers
a standing query and returns a :class:`Subscription`; a
:class:`SubscriptionManager` maintains every live answer incrementally
from the database's mutation stream through the shared k-th-entry
certificate (:mod:`repro.exec.certify`), and pushes a
:class:`ResultDelta` only when the visible answer actually moves — the
communication-competitive monitoring mode of the paper setting (see
PAPERS.md on top-k position monitoring of distributed streams).

Layers:

* :mod:`repro.watch.frames` — :class:`ResultDelta` / :class:`DeltaEntry`,
  the exact diff/apply pair (a delta stream replays to the maintained
  answer bit for bit);
* :mod:`repro.watch.subscription` — the client handle: live entries,
  callback-or-poll delivery, per-outcome :class:`WatchStats`;
* :mod:`repro.watch.manager` — per-mutation classification:
  unchanged / patched / recomputed;
* :mod:`repro.watch.server` / :mod:`repro.watch.client` — server-push
  over the socket transport's length-prefixed frames (``watch`` /
  ``delta`` / ``unwatch``), FIFO-safe alongside request/response;
* :mod:`repro.watch.bench` — pushed-delta maintenance vs naive
  re-query-per-epoch, with per-step brute-force verification
  (``reports/watch_speedup.json``).

The pure layers above the rule import no service code; the server /
client / bench modules (which do) load lazily so ``repro.service`` can
import this package without a cycle.
"""

from repro.watch.frames import (
    DELTA_CAUSES,
    DeltaEntry,
    ResultDelta,
    apply_delta,
    diff_results,
)
from repro.watch.manager import SubscriptionManager
from repro.watch.subscription import WATCH_OUTCOMES, Subscription, WatchStats

__all__ = [
    "DELTA_CAUSES",
    "DeltaEntry",
    "ResultDelta",
    "apply_delta",
    "diff_results",
    "SubscriptionManager",
    "WATCH_OUTCOMES",
    "Subscription",
    "WatchStats",
    "WatchServer",
    "WatchClient",
    "watch_speedup",
]

_LAZY = {
    "WatchServer": ("repro.watch.server", "WatchServer"),
    "WatchClient": ("repro.watch.client", "WatchClient"),
    "watch_speedup": ("repro.watch.bench", "watch_speedup"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
