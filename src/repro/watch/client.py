"""The subscribing side of the push protocol.

:class:`WatchClient` opens one framed TCP connection to a
:class:`~repro.watch.server.WatchServer` and keeps a
:class:`WatchHandle` per standing query — a client-side mirror of the
maintained answer that replays pushed deltas
(:func:`repro.watch.frames.apply_delta`) with strict sequence checking,
so a gap or reorder is a protocol error, never a silently wrong answer.

The connection is FIFO: pushed ``delta`` frames may arrive interleaved
with request replies, so every synchronous request drains deltas it
encounters into a queue (:meth:`poll` hands them out, or
:meth:`drain` applies them to their handles directly).
:meth:`sync` is the barrier — after it returns, every delta of every
mutation the server committed before the barrier has been received.
"""

from __future__ import annotations

import select
import socket
from collections import deque

from repro.distributed.socket_transport import recv_frame, send_frame
from repro.errors import ProtocolError
from repro.types import ScoredItem
from repro.watch.frames import ResultDelta, apply_delta


def _entries_from_wire(items) -> tuple[ScoredItem, ...]:
    return tuple(ScoredItem(item=item, score=score) for item, score in items)


class WatchHandle:
    """Client-side mirror of one standing query."""

    def __init__(self, subscription: int, entries, epoch: int, seq: int) -> None:
        self.id = subscription
        self.entries = entries
        self.epoch = epoch
        self.seq = seq
        self.deltas_applied = 0

    @property
    def item_ids(self) -> tuple:
        """The mirrored item ids, best first."""
        return tuple(entry.item for entry in self.entries)

    @property
    def scores(self) -> tuple:
        """The mirrored overall scores, best first."""
        return tuple(entry.score for entry in self.entries)

    def apply(self, delta: ResultDelta) -> bool:
        """Replay one pushed delta; ``False`` if it is another handle's.

        Raises :class:`ProtocolError` on a sequence gap — the stream's
        exactness guarantee is per-delta, so a missed frame means the
        mirror can no longer be trusted.
        """
        if delta.subscription != self.id:
            return False
        if delta.seq != self.seq + 1:
            raise ProtocolError(
                f"delta gap on subscription {self.id}: "
                f"got seq {delta.seq} after {self.seq}"
            )
        self.entries = apply_delta(self.entries, delta)
        self.seq = delta.seq
        self.epoch = delta.epoch
        self.deltas_applied += 1
        return True


class WatchClient:
    """One framed connection holding any number of standing queries.

    Byte counters split request/response traffic (``sent_bytes`` /
    ``received_bytes``) from server-push traffic (``pushed_bytes``,
    ``pushed_deltas``) so the benchmark can compare the two modes
    honestly.
    """

    def __init__(
        self, port: int, *, host: str = "127.0.0.1", timeout: float = 10.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(None)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._pending: deque[ResultDelta] = deque()
        self.handles: dict[int, WatchHandle] = {}
        self.sent_bytes = 0
        self.received_bytes = 0
        self.pushed_bytes = 0
        self.pushed_deltas = 0

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def _request(self, kind: str, payload: dict, expect: str) -> dict:
        self.sent_bytes += send_frame(
            self._sock, {"kind": kind, "payload": payload}
        )
        while True:
            message, size = recv_frame(self._sock)
            if message is None:
                raise ConnectionError("watch server closed the connection")
            if message.get("kind") == "delta":
                self._queue_push(message, size)
                continue
            self.received_bytes += size
            if message.get("kind") == "error":
                raise ProtocolError(f"watch server: {message.get('error')}")
            if message.get("kind") != expect:
                raise ProtocolError(
                    f"expected {expect!r} reply, got {message.get('kind')!r}"
                )
            return message

    def watch(
        self,
        *,
        algorithm: str = "auto",
        k: int = 10,
        scoring: str = "sum",
    ) -> WatchHandle:
        """Register a standing query; returns its live mirror."""
        reply = self._request(
            "watch",
            {"algorithm": algorithm, "k": k, "scoring": scoring},
            "watched",
        )
        handle = WatchHandle(
            int(reply["subscription"]),
            _entries_from_wire(reply["items"]),
            int(reply["epoch"]),
            int(reply["seq"]),
        )
        self.handles[handle.id] = handle
        return handle

    def unwatch(self, handle: WatchHandle) -> None:
        """Cancel a standing query (its queued deltas stay pollable)."""
        self._request("unwatch", {"subscription": handle.id}, "unwatched")
        self.handles.pop(handle.id, None)

    def query(
        self,
        *,
        algorithm: str = "auto",
        k: int = 10,
        scoring: str = "sum",
    ) -> tuple[int, tuple[ScoredItem, ...]]:
        """One request/response submit (the naive re-query baseline)."""
        reply = self._request(
            "query",
            {"algorithm": algorithm, "k": k, "scoring": scoring},
            "result",
        )
        return int(reply["epoch"]), _entries_from_wire(reply["items"])

    def sync(self) -> int:
        """Barrier: returns the server epoch; prior deltas are all in.

        The connection is FIFO, so every delta the server pushed before
        sending the ``synced`` reply has been read (and queued) by the
        time this returns.
        """
        reply = self._request("sync", {}, "synced")
        return int(reply["epoch"])

    # ------------------------------------------------------------------
    # Push consumption
    # ------------------------------------------------------------------

    def _queue_push(self, message: dict, size: int) -> None:
        self._pending.append(ResultDelta.from_wire(message))
        self.pushed_bytes += size
        self.pushed_deltas += 1

    def poll(self, timeout: float = 0.0) -> list[ResultDelta]:
        """Drain pushed deltas, waiting up to ``timeout`` for the first.

        Returns queued deltas immediately when any exist; otherwise
        waits for the socket to become readable, then reads every
        complete frame available without further waiting.
        """
        wait = timeout if not self._pending else 0.0
        while True:
            ready, _, _ = select.select([self._sock], [], [], wait)
            if not ready:
                break
            message, size = recv_frame(self._sock)
            if message is None:
                raise ConnectionError("watch server closed the connection")
            if message.get("kind") != "delta":
                raise ProtocolError(
                    f"unsolicited {message.get('kind')!r} frame"
                )
            self._queue_push(message, size)
            wait = 0.0
        drained = list(self._pending)
        self._pending.clear()
        return drained

    def drain(self, timeout: float = 0.0) -> int:
        """Poll and apply every delta to its handle; returns the count.

        Deltas for cancelled (unknown) handles are discarded.
        """
        applied = 0
        for delta in self.poll(timeout):
            handle = self.handles.get(delta.subscription)
            if handle is not None and handle.apply(delta):
                applied += 1
        return applied

    def close(self) -> None:
        """Drop the connection (server cancels owned subscriptions)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "WatchClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
