"""One sorted list: items ranked descending by local score.

Positions are 1-based (position 1 = highest score), matching the paper.
Ties between equal scores are broken by ascending item id so that every
database has exactly one canonical list layout — important for
reproducible experiments and for encoding the paper's figures verbatim.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.btree import BPlusTree
from repro.errors import DuplicateItemError, InvalidPositionError, UnknownItemError
from repro.types import ItemId, ListEntry, Position, Score


class SortedList:
    """An immutable sorted list of `(item, local_score)` pairs.

    Args:
        entries: `(item, score)` pairs in any order; they are sorted by
            (score desc, item asc).
        name: optional label used in reports (e.g. ``"L1"``).
        index_kind: ``"dict"`` (default) keeps an O(1) hash index from item
            to position; ``"btree"`` uses :class:`repro.btree.BPlusTree`,
            matching the paper's assumption of a tree index whose lookups
            cost ``log n``.
    """

    __slots__ = ("_items", "_scores", "_index", "_name", "_index_kind")

    def __init__(
        self,
        entries: Iterable[tuple[ItemId, Score]],
        *,
        name: str = "",
        index_kind: str = "dict",
    ) -> None:
        pairs = sorted(entries, key=lambda pair: (-pair[1], pair[0]))
        self._items: tuple[ItemId, ...] = tuple(item for item, _score in pairs)
        self._scores: tuple[Score, ...] = tuple(float(score) for _item, score in pairs)
        self._name = name
        self._index_kind = index_kind
        if len(set(self._items)) != len(self._items):
            seen: set[ItemId] = set()
            for item in self._items:
                if item in seen:
                    raise DuplicateItemError(
                        f"item {item} appears more than once in list {name or '?'}"
                    )
                seen.add(item)
        if index_kind == "dict":
            self._index: Mapping[ItemId, int] | BPlusTree = {
                item: idx for idx, item in enumerate(self._items)
            }
        elif index_kind == "btree":
            tree = BPlusTree(order=64)
            for idx, item in enumerate(self._items):
                tree.insert(item, idx)
            self._index = tree
        else:
            raise ValueError(f"unknown index kind: {index_kind!r}")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_scores(
        cls, scores: Sequence[Score], *, name: str = "", index_kind: str = "dict"
    ) -> "SortedList":
        """Build a list from a dense score vector indexed by item id."""
        return cls(
            ((item, score) for item, score in enumerate(scores)),
            name=name,
            index_kind=index_kind,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable list label."""
        return self._name

    @property
    def index_kind(self) -> str:
        """Which item→position index backs random access."""
        return self._index_kind

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: ItemId) -> bool:
        if isinstance(self._index, BPlusTree):
            return item in self._index
        return item in self._index

    def items(self) -> tuple[ItemId, ...]:
        """All item ids in rank order (best first)."""
        return self._items

    def scores(self) -> tuple[Score, ...]:
        """All local scores in rank order (descending)."""
        return self._scores

    def entries(self) -> Iterator[ListEntry]:
        """Iterate the whole list as :class:`ListEntry` records."""
        for idx, (item, score) in enumerate(zip(self._items, self._scores)):
            yield ListEntry(position=idx + 1, item=item, score=score)

    # ------------------------------------------------------------------
    # The three access modes (uncounted primitives; see ListAccessor)
    # ------------------------------------------------------------------

    def entry_at(self, position: Position) -> ListEntry:
        """The entry at a 1-based position (direct access primitive)."""
        if not 1 <= position <= len(self._items):
            raise InvalidPositionError(
                f"position {position} out of range 1..{len(self._items)}"
            )
        idx = position - 1
        return ListEntry(position=position, item=self._items[idx], score=self._scores[idx])

    def score_at(self, position: Position) -> Score:
        """Local score at a 1-based position."""
        return self.entry_at(position).score

    def item_at(self, position: Position) -> ItemId:
        """Item id at a 1-based position."""
        return self.entry_at(position).item

    def position_of(self, item: ItemId) -> Position:
        """1-based position of ``item`` (random access primitive)."""
        if isinstance(self._index, BPlusTree):
            idx = self._index.get(item, None)
        else:
            idx = self._index.get(item)
        if idx is None:
            raise UnknownItemError(f"item {item} not in list {self._name or '?'}")
        return idx + 1

    def lookup(self, item: ItemId) -> tuple[Score, Position]:
        """Local score and position of ``item`` (random access primitive)."""
        position = self.position_of(item)
        return self._scores[position - 1], position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self._name or "SortedList"
        return f"<{label}: {len(self._items)} items>"
