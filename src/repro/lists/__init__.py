"""Sorted-list storage, the substrate every algorithm runs on.

The paper models a database as ``m`` lists over the same ``n`` items, each
sorted descending by local score, supporting *sorted*, *random* and (for
BPA2) *direct* access.  This package provides:

* :class:`repro.lists.sorted_list.SortedList` — one list with O(1) access
  by position and by item;
* :class:`repro.lists.database.Database` — the validated collection of
  ``m`` lists;
* :class:`repro.lists.accessor.ListAccessor` /
  :class:`repro.lists.accessor.DatabaseAccessor` — counting wrappers that
  meter every access, so execution costs are measured rather than
  estimated;
* :mod:`repro.lists.cost` — cost reports built from the access tallies.
"""

from repro.lists.accessor import DatabaseAccessor, ListAccessor
from repro.lists.cost import CostReport
from repro.lists.database import Database
from repro.lists.sorted_list import SortedList

__all__ = [
    "Database",
    "SortedList",
    "ListAccessor",
    "DatabaseAccessor",
    "CostReport",
]
