"""Counting wrappers around sorted lists.

Algorithms never touch :class:`repro.lists.sorted_list.SortedList`
directly; they go through a :class:`ListAccessor`, which meters every
sorted/random/direct access.  This keeps the paper's cost metrics honest —
the counts in a :class:`repro.types.TopKResult` are what the algorithm
actually did, not an after-the-fact estimate.
"""

from __future__ import annotations

from repro.errors import ExhaustedListError
from repro.lists.database import Database
from repro.lists.sorted_list import SortedList
from repro.types import AccessTally, ItemId, ListEntry, Position, Score


class ListAccessor:
    """Meters accesses against one sorted list.

    Maintains the sorted-access cursor (the "last seen position" of
    TA/BPA) and a per-list :class:`AccessTally`.
    """

    __slots__ = ("_list", "tally", "_cursor")

    def __init__(self, sorted_list: SortedList) -> None:
        self._list = sorted_list
        self.tally = AccessTally()
        self._cursor = 0  # last position read under sorted access

    @property
    def source(self) -> SortedList:
        """The wrapped sorted list."""
        return self._list

    @property
    def last_sorted_position(self) -> Position:
        """Last position read under sorted access (0 before the first)."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """Whether sorted access has consumed the whole list."""
        return self._cursor >= len(self._list)

    def __len__(self) -> int:
        return len(self._list)

    # ------------------------------------------------------------------
    # The three metered access modes
    # ------------------------------------------------------------------

    def sorted_next(self) -> ListEntry:
        """Sorted (sequential) access: read the next entry."""
        if self.exhausted:
            raise ExhaustedListError(
                f"sorted access past the end of {self._list.name or 'list'}"
            )
        self._cursor += 1
        self.tally.sorted += 1
        return self._list.entry_at(self._cursor)

    def random_lookup(self, item: ItemId) -> tuple[Score, Position]:
        """Random access: local score and position of ``item``."""
        self.tally.random += 1
        return self._list.lookup(item)

    def direct_at(self, position: Position) -> ListEntry:
        """Direct access: the entry at a given 1-based position (BPA2)."""
        self.tally.direct += 1
        return self._list.entry_at(position)

    def reset(self) -> None:
        """Clear the tally and rewind the sorted-access cursor."""
        self.tally = AccessTally()
        self._cursor = 0


class DatabaseAccessor:
    """Bundle of one :class:`ListAccessor` per list of a database."""

    __slots__ = ("_database", "accessors")

    def __init__(self, database: Database) -> None:
        self._database = database
        self.accessors = tuple(ListAccessor(lst) for lst in database.lists)

    @property
    def database(self) -> Database:
        """The wrapped database."""
        return self._database

    @property
    def m(self) -> int:
        """Number of lists."""
        return len(self.accessors)

    @property
    def n(self) -> int:
        """Number of items per list."""
        return self._database.n

    def __iter__(self):
        return iter(self.accessors)

    def __getitem__(self, index: int) -> ListAccessor:
        return self.accessors[index]

    def total_tally(self) -> AccessTally:
        """Sum of the per-list tallies."""
        total = AccessTally()
        for accessor in self.accessors:
            total = total + accessor.tally
        return total

    def reset(self) -> None:
        """Reset every per-list accessor."""
        for accessor in self.accessors:
            accessor.reset()
