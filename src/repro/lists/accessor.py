"""Counting wrappers around sorted lists.

Algorithms never touch a list implementation directly; they go through a
:class:`ListAccessor`, which meters every sorted/random/direct access.
This keeps the paper's cost metrics honest — the counts in a
:class:`repro.types.TopKResult` are what the algorithm actually did, not
an after-the-fact estimate.

The accessor is backend-agnostic: anything satisfying
:class:`SortedListLike` works — the pure-Python
:class:`repro.lists.sorted_list.SortedList` (hash/B+tree indexed) and
the NumPy-backed :class:`repro.columnar.ColumnarList` are the two
shipped backends.  The middleware framing is Fagin et al.'s: lists are
abstract sources supporting sorted and random access, so storage can be
swapped without touching algorithm semantics.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.errors import ExhaustedListError, UnknownItemError
from repro.types import AccessTally, ItemId, ListEntry, Position, Score


@runtime_checkable
class SortedListLike(Protocol):
    """The source protocol every list backend implements.

    Positions are 1-based; the layout is canonical (score descending,
    ties broken by ascending item id) so both backends produce identical
    access sequences — the invariant ``tests/differential/`` enforces.
    """

    @property
    def name(self) -> str:
        """Human-readable list label."""
        ...

    def __len__(self) -> int:
        ...

    def entry_at(self, position: Position) -> ListEntry:
        """The entry at a 1-based position."""
        ...

    def score_at(self, position: Position) -> Score:
        """Local score at a 1-based position."""
        ...

    def lookup(self, item: ItemId) -> tuple[Score, Position]:
        """Local score and 1-based position of ``item``."""
        ...


@runtime_checkable
class DatabaseLike(Protocol):
    """The database protocol: ``m`` same-item-set sorted lists."""

    @property
    def m(self) -> int:
        ...

    @property
    def n(self) -> int:
        ...

    @property
    def lists(self) -> Sequence[SortedListLike]:
        ...


class ListAccessor:
    """Meters accesses against one sorted list.

    Maintains the sorted-access cursor (the "last seen position" of
    TA/BPA) and a per-list :class:`AccessTally`.
    """

    __slots__ = ("_list", "tally", "_cursor")

    def __init__(self, sorted_list: SortedListLike) -> None:
        self._list = sorted_list
        self.tally = AccessTally()
        self._cursor = 0  # last position read under sorted access

    @property
    def source(self) -> SortedListLike:
        """The wrapped sorted list."""
        return self._list

    @property
    def last_sorted_position(self) -> Position:
        """Last position read under sorted access (0 before the first)."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """Whether sorted access has consumed the whole list."""
        return self._cursor >= len(self._list)

    def __len__(self) -> int:
        return len(self._list)

    # ------------------------------------------------------------------
    # The three metered access modes
    # ------------------------------------------------------------------

    def sorted_next(self) -> ListEntry:
        """Sorted (sequential) access: read the next entry."""
        if self.exhausted:
            raise ExhaustedListError(
                f"sorted access past the end of {self._list.name or 'list'}"
            )
        self._cursor += 1
        self.tally.sorted += 1
        return self._list.entry_at(self._cursor)

    def random_lookup(self, item: ItemId) -> tuple[Score, Position]:
        """Random access: local score and position of ``item``."""
        self.tally.random += 1
        return self._list.lookup(item)

    def direct_at(self, position: Position) -> ListEntry:
        """Direct access: the entry at a given 1-based position (BPA2)."""
        self.tally.direct += 1
        return self._list.entry_at(position)

    # ------------------------------------------------------------------
    # Metered batch variants (vectorized on columnar sources)
    # ------------------------------------------------------------------

    def lookup_many(self, items: Sequence[ItemId]):
        """Batched random access: ``(scores, positions)`` for ``items``.

        Counts one random access per item — batching is an engineering
        fast path, not an accounting discount.  The tally after this
        call is *identical* to the equivalent :meth:`random_lookup`
        sequence, failure modes included: an unknown item mid-batch
        leaves exactly the accesses up to and including the failing
        lookup counted, as the per-entry loop would (the vectorized
        path validates every item before counting, so it only serves
        all-known batches; a bad batch replays through the scalar loop
        to fail at the same item with the same partial tally).
        Columnar sources answer with a single NumPy gather; other
        backends fall back to a scalar loop with identical results.
        """
        fast = getattr(self._list, "lookup_many", None)
        if fast is not None:
            try:
                scores, positions = fast(items)
            except UnknownItemError:
                pass  # replay per entry below for exact partial metering
            else:
                self.tally.random += len(items)
                return scores, positions
        scores = []
        positions = []
        for item in items:
            score, position = self.random_lookup(item)
            scores.append(score)
            positions.append(position)
        return scores, positions

    def sorted_block(self, count: int) -> list[ListEntry]:
        """Block sorted access: read up to ``count`` next entries.

        Advances the cursor and counts one sorted access per entry
        actually read (the block may be truncated at the end of the
        list), so the tally and cursor equal the per-entry
        :meth:`sorted_next` sequence that stops at exhaustion.
        Columnar sources prefetch the block as array slices.
        """
        if count < 0:
            raise ValueError(f"block count must be >= 0, got {count}")
        start = self._cursor + 1
        actual = min(count, len(self._list) - self._cursor)
        if actual <= 0:
            return []
        fast = getattr(self._list, "block", None)
        if fast is not None:
            positions, items, scores = fast(start, actual)
            entries = [
                ListEntry(position=int(p), item=int(i), score=float(s))
                for p, i, s in zip(positions, items, scores)
            ]
        else:
            entries = [
                self._list.entry_at(position)
                for position in range(start, start + actual)
            ]
        self._cursor += actual
        self.tally.sorted += actual
        return entries

    def sorted_block_raw(
        self, count: int
    ) -> tuple[list[Position], list[ItemId], list[Score]]:
        """Block sorted access without entry boxing.

        Semantics (cursor advance, per-entry metering, end-of-list
        clipping) are exactly :meth:`sorted_block`; the return value is
        ``(positions, items, scores)`` as plain lists instead of
        :class:`ListEntry` objects.  Columnar sources answer straight
        from array slices via ``ndarray.tolist`` — this is the owner
        daemons' wire fast path, where per-entry dataclass construction
        dominates block serving time.
        """
        if count < 0:
            raise ValueError(f"block count must be >= 0, got {count}")
        start = self._cursor + 1
        actual = min(count, len(self._list) - self._cursor)
        if actual <= 0:
            return [], [], []
        fast = getattr(self._list, "block", None)
        if fast is not None:
            positions, items, scores = fast(start, actual)
            positions = positions.tolist()
            items = items.tolist()
            scores = scores.tolist()
        else:
            entries = [
                self._list.entry_at(position)
                for position in range(start, start + actual)
            ]
            positions = [entry.position for entry in entries]
            items = [entry.item for entry in entries]
            scores = [entry.score for entry in entries]
        self._cursor += actual
        self.tally.sorted += actual
        return positions, items, scores

    def reset(self) -> None:
        """Clear the tally and rewind the sorted-access cursor."""
        self.tally = AccessTally()
        self._cursor = 0


class DatabaseAccessor:
    """Bundle of one :class:`ListAccessor` per list of a database."""

    __slots__ = ("_database", "accessors")

    def __init__(self, database: DatabaseLike) -> None:
        self._database = database
        self.accessors = tuple(ListAccessor(lst) for lst in database.lists)

    @property
    def database(self) -> DatabaseLike:
        """The wrapped database."""
        return self._database

    @property
    def m(self) -> int:
        """Number of lists."""
        return len(self.accessors)

    @property
    def n(self) -> int:
        """Number of items per list."""
        return self._database.n

    def __iter__(self):
        return iter(self.accessors)

    def __getitem__(self, index: int) -> ListAccessor:
        return self.accessors[index]

    def total_tally(self) -> AccessTally:
        """Sum of the per-list tallies."""
        total = AccessTally()
        for accessor in self.accessors:
            total = total + accessor.tally
        return total

    def reset(self) -> None:
        """Reset every per-list accessor."""
        for accessor in self.accessors:
            accessor.reset()
