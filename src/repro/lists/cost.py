"""Cost reporting built on access tallies.

The paper evaluates three metrics (Section 6.1):

1. *execution cost* — ``as*cs + ar*cr`` with ``cs = 1``, ``cr = log2 n``,
   and BPA2's direct accesses charged like random accesses;
2. *number of accesses* — the total of all access modes, a proxy for the
   message count in a distributed deployment;
3. *response time* — wall-clock time.

:class:`CostReport` packages the first two for a finished run;
response time is measured by the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import AccessTally, CostModel, TopKResult


@dataclass(frozen=True, slots=True)
class CostReport:
    """Execution cost and access counts for one algorithm run."""

    algorithm: str
    tally: AccessTally
    execution_cost: float
    stop_position: int

    @classmethod
    def from_result(cls, result: TopKResult, model: CostModel) -> "CostReport":
        """Build a report from a finished run under a cost model."""
        return cls(
            algorithm=result.algorithm,
            tally=result.tally.copy(),
            execution_cost=model.execution_cost(result.tally),
            stop_position=result.stop_position,
        )

    @property
    def accesses(self) -> int:
        """Total number of accesses (sorted + random + direct)."""
        return self.tally.total

    def speedup_over(self, other: "CostReport") -> float:
        """How many times cheaper this run is than ``other``.

        Values above 1 mean this run is cheaper.  Mirrors the paper's
        "outperforms TA by a factor of ..." phrasing, i.e.
        ``other.cost / self.cost``.
        """
        if self.execution_cost == 0:
            return float("inf") if other.execution_cost > 0 else 1.0
        return other.execution_cost / self.execution_cost

    def access_ratio_over(self, other: "CostReport") -> float:
        """``other.accesses / self.accesses`` (above 1 = fewer accesses)."""
        if self.accesses == 0:
            return float("inf") if other.accesses > 0 else 1.0
        return other.accesses / self.accesses
