"""A database = ``m`` sorted lists over one item set.

Matches the paper's Section 2 problem definition: every item appears once
and only once in each list, and each list is independently sorted by its
local scores.  Construction validates these invariants and raises typed
errors from :mod:`repro.errors` on violation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import InconsistentListsError
from repro.lists.sorted_list import SortedList
from repro.types import ItemId, Score


class Database:
    """An immutable collection of ``m`` sorted lists over ``n`` items.

    Args:
        lists: the sorted lists; all must contain exactly the same items.
        labels: optional mapping from item id to a display label, used by
            examples (e.g. URL strings, document titles).
    """

    __slots__ = ("_lists", "_labels", "_item_ids")

    def __init__(
        self,
        lists: Sequence[SortedList],
        *,
        labels: Mapping[ItemId, str] | None = None,
    ) -> None:
        if not lists:
            raise InconsistentListsError("a database needs at least one list")
        reference = frozenset(lists[0].items())
        for sorted_list in lists[1:]:
            if frozenset(sorted_list.items()) != reference:
                raise InconsistentListsError(
                    "all lists of a database must contain the same items "
                    f"(list {sorted_list.name or '?'} differs)"
                )
        self._lists: tuple[SortedList, ...] = tuple(lists)
        self._labels = dict(labels) if labels else {}
        self._item_ids: frozenset[ItemId] = reference

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_score_rows(
        cls,
        score_rows: Sequence[Sequence[Score]],
        *,
        labels: Mapping[ItemId, str] | None = None,
        index_kind: str = "dict",
    ) -> "Database":
        """Build a database from ``m`` dense score vectors.

        ``score_rows[i][d]`` is the local score of item ``d`` in list ``i``.
        This is the most common entry point: generators produce an
        ``(m, n)`` matrix of scores and hand it here.
        """
        lists = [
            SortedList.from_scores(row, name=f"L{i + 1}", index_kind=index_kind)
            for i, row in enumerate(score_rows)
        ]
        return cls(lists, labels=labels)

    @classmethod
    def from_ranked_lists(
        cls,
        ranked: Sequence[Sequence[tuple[ItemId, Score]]],
        *,
        labels: Mapping[ItemId, str] | None = None,
        index_kind: str = "dict",
    ) -> "Database":
        """Build a database from explicit per-list rankings.

        ``ranked[i]`` is the full `(item, score)` ranking of list ``i`` in
        descending score order (any order is accepted; lists re-sort).
        Used to encode the paper's Figure 1 / Figure 2 examples verbatim.
        """
        lists = [
            SortedList(entries, name=f"L{i + 1}", index_kind=index_kind)
            for i, entries in enumerate(ranked)
        ]
        return cls(lists, labels=labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of lists."""
        return len(self._lists)

    @property
    def n(self) -> int:
        """Number of items per list."""
        return len(self._lists[0])

    @property
    def lists(self) -> tuple[SortedList, ...]:
        """The underlying sorted lists."""
        return self._lists

    @property
    def item_ids(self) -> frozenset[ItemId]:
        """The shared item id set."""
        return self._item_ids

    def label(self, item: ItemId) -> str:
        """Display label of ``item`` (falls back to ``"item <id>"``)."""
        return self._labels.get(item, f"item {item}")

    def __len__(self) -> int:
        return len(self._lists)

    def __iter__(self) -> Iterator[SortedList]:
        return iter(self._lists)

    def __getitem__(self, index: int) -> SortedList:
        return self._lists[index]

    # ------------------------------------------------------------------
    # Whole-database score helpers (used by tests and the naive baseline)
    # ------------------------------------------------------------------

    def local_scores(self, item: ItemId) -> tuple[Score, ...]:
        """The item's local score in every list, in list order."""
        return tuple(
            sorted_list.lookup(item)[0] for sorted_list in self._lists
        )

    def positions(self, item: ItemId) -> tuple[int, ...]:
        """The item's 1-based position in every list, in list order."""
        return tuple(
            sorted_list.lookup(item)[1] for sorted_list in self._lists
        )

    def iter_items(self) -> Iterable[ItemId]:
        """All item ids in ascending order."""
        return sorted(self._item_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Database m={self.m} n={self.n}>"
