"""Column-oriented table with attribute indexes and top-k queries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.algorithms.base import get_algorithm
from repro.errors import InvalidQueryError, ReproError
from repro.lists.database import Database
from repro.lists.sorted_list import SortedList
from repro.scoring import WeightedSumScoring
from repro.types import Score, TopKResult


class SchemaError(ReproError):
    """A table was built or queried against a mismatched schema."""


@dataclass(frozen=True, slots=True)
class TopKRow:
    """One answer row: id, overall score and the queried attributes."""

    id: int
    score: Score
    values: dict[str, float]
    label: str = ""


@dataclass(frozen=True, slots=True)
class TableTopKResult:
    """Answer rows plus the underlying algorithm statistics."""

    rows: tuple[TopKRow, ...]
    stats: TopKResult
    columns: tuple[str, ...]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class Table:
    """An immutable column store with cached per-attribute indexes.

    Args:
        name: table name (for error messages and reprs).
        columns: mapping column name -> numeric values; all columns must
            have the same length.  Row ``i`` of every column belongs to
            tuple id ``i``.
        labels: optional row id -> display label.
    """

    def __init__(
        self,
        name: str,
        columns: Mapping[str, Sequence[float]],
        *,
        labels: Mapping[int, str] | None = None,
    ) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        lengths = {column: len(values) for column, values in columns.items()}
        if len(set(lengths.values())) != 1:
            raise SchemaError(
                f"table {name!r} has ragged columns: {lengths}"
            )
        self._name = name
        self._columns: dict[str, tuple[float, ...]] = {}
        for column, values in columns.items():
            try:
                self._columns[column] = tuple(float(v) for v in values)
            except (TypeError, ValueError) as exc:
                raise SchemaError(
                    f"column {column!r} of table {name!r} is not numeric"
                ) from exc
        self._labels = dict(labels) if labels else {}
        self._n_rows = next(iter(lengths.values()))
        # (column, flipped?) -> SortedList; built lazily, reused forever
        # (the table is immutable, so indexes never go stale).
        self._indexes: dict[tuple[str, bool], SortedList] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        rows: Iterable[Mapping[str, float]],
        *,
        labels: Mapping[int, str] | None = None,
    ) -> "Table":
        """Build from row dicts (all rows must share the same keys)."""
        rows = list(rows)
        if not rows:
            raise SchemaError(f"table {name!r} needs at least one row")
        schema = tuple(rows[0].keys())
        columns: dict[str, list[float]] = {column: [] for column in schema}
        for index, row in enumerate(rows):
            if tuple(row.keys()) != schema:
                raise SchemaError(
                    f"row {index} of table {name!r} does not match the "
                    f"schema {schema}"
                )
            for column in schema:
                columns[column].append(row[column])
        return cls(name, columns, labels=labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Table name."""
        return self._name

    @property
    def n_rows(self) -> int:
        """Number of tuples."""
        return self._n_rows

    @property
    def column_names(self) -> tuple[str, ...]:
        """All column names in definition order."""
        return tuple(self._columns)

    def column(self, name: str) -> tuple[float, ...]:
        """The raw values of one column."""
        if name not in self._columns:
            raise SchemaError(
                f"table {self._name!r} has no column {name!r}; "
                f"known: {list(self._columns)}"
            )
        return self._columns[name]

    def row(self, row_id: int) -> dict[str, float]:
        """One tuple as a dict."""
        if not 0 <= row_id < self._n_rows:
            raise InvalidQueryError(
                f"row id {row_id} out of range 0..{self._n_rows - 1}"
            )
        return {column: values[row_id] for column, values in self._columns.items()}

    def label(self, row_id: int) -> str:
        """Display label of a row."""
        return self._labels.get(row_id, f"row {row_id}")

    def __len__(self) -> int:
        return self._n_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Table {self._name!r}: {self._n_rows} rows x "
            f"{len(self._columns)} columns>"
        )

    # ------------------------------------------------------------------
    # Indexing and queries
    # ------------------------------------------------------------------

    def index_for(self, column: str, *, flipped: bool = False) -> SortedList:
        """The (cached) sorted index of one column.

        ``flipped=True`` indexes ``max(column) - value`` so that smaller
        raw values rank first while scores stay non-negative.
        """
        key = (column, flipped)
        if key not in self._indexes:
            values = self.column(column)
            if flipped:
                top = max(values)
                values = tuple(top - v for v in values)
            self._indexes[key] = SortedList.from_scores(
                values, name=f"{self._name}.{column}{'^-1' if flipped else ''}"
            )
        return self._indexes[key]

    def topk(
        self,
        k: int,
        weights: Mapping[str, float],
        *,
        minimize: Sequence[str] = (),
        algorithm: str = "bpa2",
        **algorithm_options,
    ) -> TableTopKResult:
        """Weighted top-k over the given attributes.

        Args:
            k: number of rows to return.
            weights: column -> non-negative weight; only these columns
                participate in the score.
            minimize: columns (subset of ``weights``) where *smaller* raw
                values are better; they are flipped monotonically.
            algorithm: any registered algorithm name (default BPA2).
            **algorithm_options: passed to the algorithm constructor
                (e.g. ``tracker="btree"``, ``approximation=1.5``).
        """
        if not weights:
            raise InvalidQueryError("topk needs at least one weighted column")
        flip = set(minimize)
        unknown_flips = flip - set(weights)
        if unknown_flips:
            raise InvalidQueryError(
                f"minimize columns not in the weighted set: {sorted(unknown_flips)}"
            )
        ordered_columns = tuple(weights)
        lists = [
            self.index_for(column, flipped=column in flip)
            for column in ordered_columns
        ]
        database = Database(lists, labels=self._labels)
        scoring = WeightedSumScoring([weights[c] for c in ordered_columns])
        runner = get_algorithm(algorithm, **algorithm_options)
        stats = runner.run(database, k, scoring)
        rows = tuple(
            TopKRow(
                id=entry.item,
                score=entry.score,
                values={c: self._columns[c][entry.item] for c in ordered_columns},
                label=self.label(entry.item),
            )
            for entry in stats.items
        )
        return TableTopKResult(rows=rows, stats=stats, columns=ordered_columns)
