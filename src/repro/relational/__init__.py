"""Relational top-k: ranked retrieval over a table's attribute indexes.

The paper's first motivating example: "to find the top-k tuples in a
relational table according to some scoring function over its attributes
... it is sufficient to have a sorted (indexed) list of the values of
each attribute involved in the scoring function."

:class:`Table` is a small column-oriented store that builds (and caches)
one sorted index per attribute and answers weighted top-k queries with
any algorithm in the library::

    table = Table.from_rows("restaurants", rows)
    result = table.topk(5, weights={"food": 3.0, "proximity": 2.0},
                        minimize=("price",), algorithm="bpa2")
    for row in result.rows:
        print(row.id, row.score, row.values)

``minimize`` flips a column (lower is better) with the monotone
transform ``max(column) - value`` so it can participate in the same
monotonic weighted sum.
"""

from repro.relational.table import Table, TableTopKResult, TopKRow

__all__ = ["Table", "TableTopKResult", "TopKRow"]
