"""Epoch-stamped, checksummed, compressed snapshot files.

A snapshot is the restart-critical artifact of a long-lived
:class:`repro.service.QueryService`: the columnar database it was
serving, stamped with the epoch it was current at, wrapped so a new
process can warm-start from disk instead of cold-rebuilding from the
dynamic source.  The payload *is* the existing ``.bptk`` byte layout
(:mod:`repro.storage.disk`), deflate-compressed, framed by a header
that makes corruption detectable — and partially repairable — offline::

    header:   magic "BPSN" | version u32 | flags u32 | epoch u64
              | m u32 | n u32 | payload_len u64 | payload_crc u32
    crc table: m pairs of (rank_crc u32, index_crc u32)
    payload:  the .bptk bytes, zlib-deflated when flags bit 0 is set

``payload_len``/``payload_crc`` cover the *uncompressed* payload.  The
per-list pair checksums the rank section and the index section
separately: the index section is pure derived data (the item-sorted
binary-search index over the rank section), so :func:`verify_snapshot`
can rebuild a damaged index from an intact rank section (``repair=True``)
— but never the reverse, because the rank section is the ground truth.

Writes go through :func:`repro.storage.disk.atomic_writer`; a crash
mid-save leaves the previous snapshot intact.
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.columnar import ColumnarDatabase, ColumnarList
from repro.errors import CorruptFileError, StorageError
from repro.storage.disk import (
    _HEADER,
    _INDEX_RECORD,
    _MAGIC,
    _RANK_RECORD,
    _VERSION,
    _index_section_offset,
    _list_block_size,
    _rank_section_offset,
    atomic_writer,
    write_database,
)

_SNAP_MAGIC = b"BPSN"
_SNAP_VERSION = 1
_SNAP_HEADER = struct.Struct("<4sIIQIIQI")
_CRC_PAIR = struct.Struct("<II")
_FLAG_DEFLATE = 1

_RANK_DTYPE = np.dtype([("item", "<i8"), ("score", "<f8")])
_INDEX_DTYPE = np.dtype([("item", "<i8"), ("rank", "<i8"), ("score", "<f8")])


def _section_crcs(payload: bytes, m: int, n: int) -> list[tuple[int, int]]:
    """Per-list (rank_crc, index_crc) over the uncompressed payload."""
    pairs = []
    for i in range(m):
        rank_off = _rank_section_offset(n, i)
        index_off = _index_section_offset(n, i)
        rank_end = rank_off + n * _RANK_RECORD.size
        index_end = index_off + n * _INDEX_RECORD.size
        pairs.append(
            (
                zlib.crc32(payload[rank_off:rank_end]),
                zlib.crc32(payload[index_off:index_end]),
            )
        )
    return pairs


def _frame(payload: bytes, m: int, n: int, epoch: int, compress: bool) -> bytes:
    flags = _FLAG_DEFLATE if compress else 0
    blob = zlib.compress(payload, 6) if compress else payload
    header = _SNAP_HEADER.pack(
        _SNAP_MAGIC,
        _SNAP_VERSION,
        flags,
        epoch,
        m,
        n,
        len(payload),
        zlib.crc32(payload),
    )
    table = b"".join(
        _CRC_PAIR.pack(rank_crc, index_crc)
        for rank_crc, index_crc in _section_crcs(payload, m, n)
    )
    return header + table + blob


def write_snapshot(
    database,
    path: str | Path,
    *,
    epoch: int = 0,
    compress: bool = True,
) -> None:
    """Atomically save ``database`` as an epoch-stamped snapshot file.

    ``database`` is anything :func:`repro.storage.disk.save_database`
    accepts (it is serialized through the public list API).
    """
    if epoch < 0:
        raise ValueError(f"epoch must be >= 0, got {epoch}")
    buffer = io.BytesIO()
    write_database(buffer, database)
    payload = buffer.getvalue()
    with atomic_writer(path) as handle:
        handle.write(_frame(payload, database.m, database.n, epoch, compress))


def read_snapshot_header(path: str | Path) -> tuple[int, int, int]:
    """``(m, n, epoch)`` from a snapshot's fixed header, payload unread.

    Lets a cluster parent size placements and report epochs without
    loading (or even reading) the list payload — the owner processes
    each :func:`load_snapshot` their own copy.
    """
    path = Path(path)
    with path.open("rb") as handle:
        raw = handle.read(_SNAP_HEADER.size)
    if len(raw) < _SNAP_HEADER.size:
        raise CorruptFileError(f"{path}: truncated snapshot header")
    magic, version, _flags, epoch, m, n, _payload_len, _payload_crc = (
        _SNAP_HEADER.unpack(raw)
    )
    if magic != _SNAP_MAGIC:
        raise CorruptFileError(f"{path}: bad snapshot magic {magic!r}")
    if version != _SNAP_VERSION:
        raise CorruptFileError(f"{path}: unsupported snapshot version {version}")
    return int(m), int(n), int(epoch)


def _read_frame(path: Path) -> tuple[dict, bytes]:
    """Parse the snapshot frame; returns (header fields, raw tail)."""
    raw = path.read_bytes()
    if len(raw) < _SNAP_HEADER.size:
        raise CorruptFileError(f"{path}: truncated snapshot header")
    magic, version, flags, epoch, m, n, payload_len, payload_crc = (
        _SNAP_HEADER.unpack_from(raw)
    )
    if magic != _SNAP_MAGIC:
        raise CorruptFileError(f"{path}: bad snapshot magic {magic!r}")
    if version != _SNAP_VERSION:
        raise CorruptFileError(f"{path}: unsupported snapshot version {version}")
    table_end = _SNAP_HEADER.size + m * _CRC_PAIR.size
    if len(raw) < table_end:
        raise CorruptFileError(f"{path}: truncated checksum table")
    pairs = [
        _CRC_PAIR.unpack_from(raw, _SNAP_HEADER.size + i * _CRC_PAIR.size)
        for i in range(m)
    ]
    fields = {
        "flags": flags,
        "epoch": epoch,
        "m": m,
        "n": n,
        "payload_len": payload_len,
        "payload_crc": payload_crc,
        "pairs": pairs,
    }
    return fields, raw[table_end:]


def _decompress(fields: dict, tail: bytes, path: Path) -> bytes:
    if fields["flags"] & _FLAG_DEFLATE:
        try:
            payload = zlib.decompress(tail)
        except zlib.error as exc:
            raise CorruptFileError(
                f"{path}: snapshot payload does not inflate ({exc})"
            ) from exc
    else:
        payload = tail
    if len(payload) != fields["payload_len"]:
        raise CorruptFileError(
            f"{path}: payload length {len(payload)} != "
            f"stated {fields['payload_len']}"
        )
    return payload


def _check_bptk_shape(fields: dict, payload: bytes, path: Path) -> None:
    m, n = fields["m"], fields["n"]
    expected = _HEADER.size + m * _list_block_size(n)
    if len(payload) != expected:
        raise CorruptFileError(
            f"{path}: payload size {len(payload)} != expected {expected} "
            f"for m={m} n={n}"
        )
    magic, version, pm, pn = _HEADER.unpack_from(payload)
    if magic != _MAGIC or version != _VERSION or pm != m or pn != n:
        raise CorruptFileError(
            f"{path}: payload header {magic!r} v{version} m={pm} n={pn} "
            f"disagrees with snapshot header m={m} n={n}"
        )


def load_snapshot(path: str | Path) -> tuple[ColumnarDatabase, int]:
    """Load a snapshot into a :class:`ColumnarDatabase`; returns its epoch.

    The whole-payload checksum is verified (bit rot surfaces as
    :class:`repro.errors.CorruptFileError`, never as silently wrong
    answers); the columnar arrays are then adopted directly from the
    payload's sections — the rank section is already the canonical
    order and the index section already the sorted-id permutation, so
    no re-sort happens on the load path.  Use :func:`verify_snapshot`
    for the deeper (and repair-capable) structural audit.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no such snapshot file: {path}")
    fields, tail = _read_frame(path)
    payload = _decompress(fields, tail, path)
    if zlib.crc32(payload) != fields["payload_crc"]:
        raise CorruptFileError(f"{path}: snapshot payload checksum mismatch")
    _check_bptk_shape(fields, payload, path)
    m, n = fields["m"], fields["n"]
    lists = []
    for i in range(m):
        rank = np.frombuffer(
            payload, dtype=_RANK_DTYPE, count=n,
            offset=_rank_section_offset(n, i),
        )
        index = np.frombuffer(
            payload, dtype=_INDEX_DTYPE, count=n,
            offset=_index_section_offset(n, i),
        )
        uids = index["item"].astype(np.int64)
        dense = bool(
            n == 0 or (int(uids[0]) == 0 and int(uids[-1]) == n - 1)
        )
        lists.append(
            ColumnarList._from_canonical(
                rank["item"].astype(np.int64),
                rank["score"].astype(np.float64),
                uids,
                index["rank"].astype(np.int64) - 1,
                dense,
                f"L{i + 1}",
            )
        )
    return ColumnarDatabase(lists), fields["epoch"]


@dataclass
class SnapshotReport:
    """The outcome of one :func:`verify_snapshot` audit."""

    path: Path
    epoch: int = 0
    m: int = 0
    n: int = 0
    compressed: bool = False
    checks: int = 0  #: individual validations performed
    issues: list[str] = field(default_factory=list)
    repaired: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the snapshot is (now) fully consistent."""
        return not self.issues


def _audit_list(
    report: SnapshotReport, payload: bytes, i: int, pair: tuple[int, int]
) -> tuple[bool, bool]:
    """Check one list's sections; returns (rank_ok, index_ok)."""
    n = report.n
    rank_off = _rank_section_offset(n, i)
    index_off = _index_section_offset(n, i)
    rank_bytes = payload[rank_off : rank_off + n * _RANK_RECORD.size]
    index_bytes = payload[index_off : index_off + n * _INDEX_RECORD.size]
    name = f"L{i + 1}"

    rank_ok = True
    report.checks += 1
    if zlib.crc32(rank_bytes) != pair[0]:
        report.issues.append(f"{name}: rank section checksum mismatch")
        rank_ok = False
    rank = np.frombuffer(rank_bytes, dtype=_RANK_DTYPE)
    if rank_ok and n:
        report.checks += 1
        scores = rank["score"]
        items = rank["item"]
        descending = np.diff(scores) <= 0
        tie_items_ascend = (np.diff(scores) < 0) | (np.diff(items) > 0)
        if not bool(descending.all() and tie_items_ascend.all()):
            report.issues.append(
                f"{name}: rank section violates canonical "
                "(score desc, item asc) order"
            )
            rank_ok = False

    index_ok = True
    report.checks += 1
    if zlib.crc32(index_bytes) != pair[1]:
        report.issues.append(f"{name}: index section checksum mismatch")
        index_ok = False
    index = np.frombuffer(index_bytes, dtype=_INDEX_DTYPE)
    if index_ok and n:
        report.checks += 1
        if not bool((np.diff(index["item"]) > 0).all()):
            report.issues.append(
                f"{name}: index section not strictly item-sorted"
            )
            index_ok = False
    if index_ok and rank_ok and n:
        # Cross-validation: every index record must point at a rank
        # record holding exactly its (item, score).
        report.checks += 1
        ranks = index["rank"]
        in_range = (ranks >= 1) & (ranks <= n)
        if not bool(in_range.all()):
            report.issues.append(f"{name}: index ranks out of range 1..{n}")
            index_ok = False
        else:
            pointed = rank[ranks - 1]
            same_item = pointed["item"] == index["item"]
            same_score = (
                pointed["score"].tobytes() == index["score"].tobytes()
            )
            if not (bool(same_item.all()) and same_score):
                report.issues.append(
                    f"{name}: index records disagree with the rank section"
                )
                index_ok = False
    return rank_ok, index_ok


def _rebuilt_index_section(rank_bytes: bytes) -> bytes:
    """Derive a list's index section from its (intact) rank section."""
    rank = np.frombuffer(rank_bytes, dtype=_RANK_DTYPE)
    rebuilt = np.empty(rank.shape[0], dtype=_INDEX_DTYPE)
    order = np.argsort(rank["item"], kind="stable")
    rebuilt["item"] = rank["item"][order]
    rebuilt["rank"] = order + 1
    rebuilt["score"] = rank["score"][order]
    return rebuilt.tobytes()


def verify_snapshot(path: str | Path, *, repair: bool = False) -> SnapshotReport:
    """Audit a snapshot file's integrity; optionally repair its indexes.

    Checks, per list: both section checksums, the rank section's
    canonical order, the index section's sort invariant, and the
    rank/index cross-validation.  With ``repair=True``, lists whose rank
    section is intact but whose index section fails any check get their
    index rebuilt from the rank section, and the file is rewritten
    atomically (new checksums included).  Damage to a rank section is
    never repairable — that data exists nowhere else.

    Returns a :class:`SnapshotReport`; structural damage that prevents
    the audit from even framing the file (bad magic, truncation, a
    payload that will not inflate) raises
    :class:`repro.errors.CorruptFileError` instead.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no such snapshot file: {path}")
    fields, tail = _read_frame(path)
    report = SnapshotReport(
        path=path,
        epoch=fields["epoch"],
        m=fields["m"],
        n=fields["n"],
        compressed=bool(fields["flags"] & _FLAG_DEFLATE),
    )
    payload = _decompress(fields, tail, path)
    _check_bptk_shape(fields, payload, path)
    report.checks += 1
    payload_crc_ok = zlib.crc32(payload) == fields["payload_crc"]
    if not payload_crc_ok:
        report.issues.append("whole-payload checksum mismatch")

    repairable: list[int] = []
    for i in range(report.m):
        rank_ok, index_ok = _audit_list(report, payload, i, fields["pairs"][i])
        if rank_ok and not index_ok:
            repairable.append(i)

    if repair and repairable:
        n = report.n
        patched = bytearray(payload)
        for i in repairable:
            rank_off = _rank_section_offset(n, i)
            index_off = _index_section_offset(n, i)
            patched[index_off : index_off + n * _INDEX_RECORD.size] = (
                _rebuilt_index_section(
                    payload[rank_off : rank_off + n * _RANK_RECORD.size]
                )
            )
        with atomic_writer(path) as handle:
            handle.write(
                _frame(
                    bytes(patched),
                    report.m,
                    n,
                    report.epoch,
                    report.compressed,
                )
            )
        # Re-audit the rewritten file: surviving issues (e.g. a damaged
        # rank section) stay issues; everything the rebuild cured moves
        # to ``repaired``.
        fresh = verify_snapshot(path, repair=False)
        fresh.repaired = [
            issue for issue in report.issues if issue not in fresh.issues
        ]
        fresh.checks += report.checks
        return fresh
    return report
