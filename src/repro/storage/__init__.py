"""On-disk sorted-list storage.

The paper prices a random access at ``cr = log2(n)`` because it assumes
a tree index over the items.  This package makes that cost model
literal: lists are stored in a compact binary file where

* *sorted/direct access* is one ``seek`` + fixed-size read into the
  rank-ordered section, and
* *random access* is a binary search over the item-ordered index
  section — exactly ``log2(n)`` seeks.

Usage::

    from repro.storage import save_database, open_database

    save_database(database, "lists.bptk")
    with open_database("lists.bptk") as disk_db:
        result = BestPositionAlgorithm2().run(disk_db, k=10)

``DiskDatabase`` exposes the same read surface as the in-memory
:class:`repro.lists.database.Database`, so every algorithm runs on it
unchanged.
"""

from repro.storage.disk import (
    DiskDatabase,
    DiskSortedList,
    atomic_writer,
    open_database,
    save_database,
)
from repro.storage.snapshot import (
    SnapshotReport,
    load_snapshot,
    read_snapshot_header,
    verify_snapshot,
    write_snapshot,
)

__all__ = [
    "save_database",
    "open_database",
    "atomic_writer",
    "DiskDatabase",
    "DiskSortedList",
    "write_snapshot",
    "load_snapshot",
    "read_snapshot_header",
    "verify_snapshot",
    "SnapshotReport",
]
