"""Binary file format and disk-backed list implementation.

File layout (all little-endian)::

    header:   magic "BPTK" | version u32 | m u32 | n u32        (16 bytes)
    per list, repeated m times:
      rank section:  n records of (item i64, score f64)         (16 B each)
                     ordered by rank (position 1 first)
      index section: n records of (item i64, rank i64, score f8)(24 B each)
                     ordered by item id (binary-search target)

The rank section serves sorted and direct access (one seek per read);
the index section serves random access via binary search — ``log2 n``
seeks, which is precisely the paper's ``cr`` cost assumption.
"""

from __future__ import annotations

import contextlib
import os
import struct
import tempfile
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.errors import (
    CorruptFileError,
    InvalidPositionError,
    StorageError,
    UnknownItemError,
)
from repro.types import ItemId, ListEntry, Position, Score

_MAGIC = b"BPTK"
_VERSION = 1
_HEADER = struct.Struct("<4sIII")
_RANK_RECORD = struct.Struct("<qd")  # (item, score)
_INDEX_RECORD = struct.Struct("<qqd")  # (item, rank, score)


def _list_block_size(n: int) -> int:
    return n * _RANK_RECORD.size + n * _INDEX_RECORD.size


def _rank_section_offset(n: int, list_index: int) -> int:
    return _HEADER.size + list_index * _list_block_size(n)


def _index_section_offset(n: int, list_index: int) -> int:
    return _rank_section_offset(n, list_index) + n * _RANK_RECORD.size


@contextlib.contextmanager
def atomic_writer(path: str | Path):
    """Yield a binary handle whose contents atomically replace ``path``.

    Writes go to a same-directory temporary file; on clean exit the file
    is flushed, fsynced and moved over ``path`` with :func:`os.replace`
    (atomic on POSIX), then the directory entry is fsynced.  A crash or
    exception mid-write leaves the target untouched — a concurrent
    reader only ever sees the old complete file or the new complete
    file, never a truncated hybrid.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        directory_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


def write_database(handle: BinaryIO, database) -> None:
    """Serialize a database to an open binary handle (``.bptk`` layout)."""
    handle.write(_HEADER.pack(_MAGIC, _VERSION, database.m, database.n))
    for sorted_list in database.lists:
        index_records = []
        for entry in sorted_list.entries():
            handle.write(_RANK_RECORD.pack(entry.item, entry.score))
            index_records.append((entry.item, entry.position, entry.score))
        index_records.sort()
        for item, rank, score in index_records:
            handle.write(_INDEX_RECORD.pack(item, rank, score))


def save_database(database, path: str | Path) -> None:
    """Serialize a database (any object with ``lists``/``m``/``n``).

    Lists are read through their public API, so in-memory, dynamic and
    even other disk databases can all be saved.  The write is atomic
    (:func:`atomic_writer`): a crash mid-write cannot leave a truncated
    file at ``path``, which matters once snapshots are restart-critical.
    """
    with atomic_writer(path) as handle:
        write_database(handle, database)


class DiskSortedList:
    """One sorted list served from the file (no in-memory copy).

    All reads are *positional* (:func:`os.pread`): the file offset is
    part of every read call, so lists sharing one file descriptor —
    every list of a :class:`DiskDatabase`, possibly across threads —
    never race on a shared cursor.  A ``seek``-then-``read`` pair is not
    atomic; under concurrency it returns records from whatever offset
    the last interleaved seek left behind.
    """

    __slots__ = ("_handle", "_n", "_rank_offset", "_index_offset", "_name")

    def __init__(
        self, handle: BinaryIO, n: int, list_index: int, *, name: str = ""
    ) -> None:
        self._handle = handle
        self._n = n
        self._rank_offset = _rank_section_offset(n, list_index)
        self._index_offset = _index_section_offset(n, list_index)
        self._name = name or f"L{list_index + 1}"

    def _pread(self, offset: int, size: int) -> bytes:
        payload = os.pread(self._handle.fileno(), size, offset)
        if len(payload) != size:
            raise CorruptFileError(
                f"list {self._name}: short read of {len(payload)}/{size} "
                f"bytes at offset {offset}"
            )
        return payload

    @property
    def name(self) -> str:
        """List label (``L1``, ``L2``, ...)."""
        return self._name

    def __len__(self) -> int:
        return self._n

    def entry_at(self, position: Position) -> ListEntry:
        """Read the entry at a 1-based position (one positional read)."""
        if not 1 <= position <= self._n:
            raise InvalidPositionError(
                f"position {position} out of range 1..{self._n}"
            )
        item, score = _RANK_RECORD.unpack(
            self._pread(
                self._rank_offset + (position - 1) * _RANK_RECORD.size,
                _RANK_RECORD.size,
            )
        )
        return ListEntry(position=position, item=item, score=score)

    def score_at(self, position: Position) -> Score:
        """Local score at a 1-based position."""
        return self.entry_at(position).score

    def item_at(self, position: Position) -> ItemId:
        """Item id at a 1-based position."""
        return self.entry_at(position).item

    def _read_index_record(self, slot: int) -> tuple[int, int, float]:
        return _INDEX_RECORD.unpack(
            self._pread(
                self._index_offset + slot * _INDEX_RECORD.size,
                _INDEX_RECORD.size,
            )
        )

    def lookup(self, item: ItemId) -> tuple[Score, Position]:
        """Random access: binary search the item index (log2 n seeks)."""
        low, high = 0, self._n - 1
        while low <= high:
            mid = (low + high) // 2
            candidate, rank, score = self._read_index_record(mid)
            if candidate == item:
                return score, rank
            if candidate < item:
                low = mid + 1
            else:
                high = mid - 1
        raise UnknownItemError(f"item {item} not in list {self._name}")

    def position_of(self, item: ItemId) -> Position:
        """1-based position of ``item``."""
        return self.lookup(item)[1]

    def __contains__(self, item: ItemId) -> bool:
        try:
            self.lookup(item)
        except UnknownItemError:
            return False
        return True

    def entries(self) -> Iterator[ListEntry]:
        """Sequentially stream the whole rank section."""
        payload = self._pread(self._rank_offset, self._n * _RANK_RECORD.size)
        for index, (item, score) in enumerate(_RANK_RECORD.iter_unpack(payload)):
            yield ListEntry(position=index + 1, item=item, score=score)

    def items(self) -> tuple[ItemId, ...]:
        """All item ids in rank order (reads the whole section)."""
        return tuple(entry.item for entry in self.entries())

    def scores(self) -> tuple[Score, ...]:
        """All scores in rank order (reads the whole section)."""
        return tuple(entry.score for entry in self.entries())


class DiskDatabase:
    """A database served from one ``.bptk`` file.

    Context-manager; exposes the same read surface as the in-memory
    :class:`repro.lists.database.Database` so algorithms run unchanged.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._handle: BinaryIO = open(self._path, "rb")
        try:
            header = self._handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise CorruptFileError(f"{self._path}: truncated header")
            magic, version, m, n = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise CorruptFileError(f"{self._path}: bad magic {magic!r}")
            if version != _VERSION:
                raise CorruptFileError(
                    f"{self._path}: unsupported version {version}"
                )
            expected = _HEADER.size + m * _list_block_size(n)
            actual = self._path.stat().st_size
            if actual != expected:
                raise CorruptFileError(
                    f"{self._path}: size {actual} != expected {expected}"
                )
            self._m = m
            self._n = n
            self._lists = tuple(
                DiskSortedList(self._handle, n, index) for index in range(m)
            )
        except Exception:
            self._handle.close()
            raise

    # ------------------------------------------------------------------
    # Database read surface
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of lists."""
        return self._m

    @property
    def n(self) -> int:
        """Number of items per list."""
        return self._n

    @property
    def lists(self) -> tuple[DiskSortedList, ...]:
        """The disk-backed lists."""
        return self._lists

    @property
    def item_ids(self) -> frozenset[ItemId]:
        """The item id set (reads list 1 fully)."""
        return frozenset(self._lists[0].items())

    @property
    def path(self) -> Path:
        """The backing file."""
        return self._path

    def label(self, item: ItemId) -> str:
        """Display label (labels are not persisted)."""
        return f"item {item}"

    def local_scores(self, item: ItemId) -> tuple[Score, ...]:
        """The item's local score in every list."""
        return tuple(lst.lookup(item)[0] for lst in self._lists)

    def __len__(self) -> int:
        return self._m

    def __iter__(self):
        return iter(self._lists)

    def __getitem__(self, index: int) -> DiskSortedList:
        return self._lists[index]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the backing file; further reads raise."""
        self._handle.close()

    @property
    def closed(self) -> bool:
        """Whether the backing file is closed."""
        return self._handle.closed

    def __enter__(self) -> "DiskDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DiskDatabase {self._path} m={self._m} n={self._n}>"


def open_database(path: str | Path) -> DiskDatabase:
    """Open a ``.bptk`` file for querying (validates the header)."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no such database file: {path}")
    return DiskDatabase(path)
