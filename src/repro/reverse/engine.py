"""The reverse top-k engine: bounds, boundary cache, maintenance.

One engine serves one registry against one (snapshot-swapping) data
source.  A ``reverse_topk(item, k)`` query runs in three stages:

1. **Vectorized pruning** — :class:`~repro.reverse.index.RTopkIndex`
   brackets every user's k-th-best score from per-list order
   statistics; two array comparisons decide most users IN or OUT.
2. **Boundary cache** — an undecided user whose exact top-k (and its
   k-th-entry certificate) is already cached answers by membership in
   that maintained answer.
3. **Fallback** — the rest run one certified top-k each through the
   injected ``runner`` (the service's planned execution path); the
   answer is cached for next time.

Cached answers are maintained **incrementally** under the mutation
stream: each :class:`~repro.dynamic.MutationEvent` is classified per
entry by the shared :func:`repro.exec.certify.classify_delta` — the
same k-th-entry certificate reasoning the result cache and standing
subscriptions use — so a mutation that provably cannot move a user's
boundary keeps that user's entry (`unchanged`), a small exact repair
patches it in place (`patched`), and only certificate-breaking deltas
drop it (`dropped`, re-decided lazily on next touch).  Most mutations
therefore re-decide only the touched users.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import UnknownItemError
from repro.exec import certify
from repro.exec.merge import entry_key
from repro.reverse.index import RTopkIndex
from repro.reverse.registry import UserWeightRegistry
from repro.scoring import ScoringFunction
from repro.types import ItemId, ScoredItem

#: ``runner(scoring, k) -> ranked ScoredItem tuple`` — one exact,
#: certified top-k in the library's canonical ``(-score, id)`` order.
ReverseRunner = Callable[[ScoringFunction, int], Sequence[ScoredItem]]


@dataclass
class ReverseCounters:
    """Aggregate counters over an engine's lifetime."""

    queries: int = 0
    bound_in: int = 0  #: user decisions settled IN by the index bounds
    bound_out: int = 0  #: user decisions settled OUT by the index bounds
    boundary_hits: int = 0  #: undecided users answered from cached top-ks
    fallbacks: int = 0  #: undecided users that ran a fresh certified top-k
    #: per (mutation x cached entry) maintenance outcomes:
    maintenance_unchanged: int = 0
    maintenance_patched: int = 0
    maintenance_dropped: int = 0
    flushes: int = 0  #: whole-cache invalidations (poison / lost capture)


@dataclass(frozen=True)
class ReverseQueryStats:
    """How one reverse query was decided."""

    users: int  #: registered users considered
    bound_in: int
    bound_out: int
    boundary_hits: int
    fallbacks: int
    seconds: float


@dataclass(frozen=True)
class ReverseResult:
    """One reverse top-k answer: the matching users, ascending."""

    item: ItemId
    k: int
    users: tuple[str, ...]
    stats: ReverseQueryStats

    def __len__(self) -> int:
        return len(self.users)

    def __contains__(self, user: str) -> bool:
        return user in self.users


class _BoundaryEntry:
    """One user's maintained exact top-k and its certificate."""

    __slots__ = ("k", "scoring", "items", "members", "boundary", "exhaustive")

    def __init__(self, k: int, scoring, items: tuple[ScoredItem, ...]):
        self.k = k
        self.scoring = scoring
        self._install(items)

    def _install(self, items: tuple[ScoredItem, ...]) -> None:
        self.items = tuple(items)
        self.members = {entry.item: entry.score for entry in self.items}
        if len(self.items) == self.k:
            self.boundary = entry_key(self.items[-1])
            self.exhaustive = False
        else:
            # Fewer than k items exist, so the answer covers the whole
            # database — certify's exhaustive mode keeps every mutation
            # decidable without a boundary.
            self.boundary = None
            self.exhaustive = True


class ReverseTopkEngine:
    """Registry + index + boundary cache behind ``reverse_topk``.

    Args:
        registry: the user weight vectors to answer for.
        runner: executes one exact top-k (the service injects its
            planned execution path).
        patch_limit: largest touched-item count a maintenance patch may
            re-score (mirrors the result cache's knob).
        boundary_limit: maximum cached per-user boundary entries
            (LRU-evicted beyond it; ``0`` disables the cache).
    """

    def __init__(
        self,
        registry: UserWeightRegistry,
        *,
        runner: ReverseRunner,
        patch_limit: int = 8,
        boundary_limit: int = 1024,
    ) -> None:
        if patch_limit < 0:
            raise ValueError(f"patch_limit must be >= 0, got {patch_limit}")
        if boundary_limit < 0:
            raise ValueError(
                f"boundary_limit must be >= 0, got {boundary_limit}"
            )
        self._registry = registry
        self._runner = runner
        self._patch_limit = patch_limit
        self._boundary_limit = boundary_limit
        #: ``(user, registry version, k) -> _BoundaryEntry`` in LRU order.
        self._entries: OrderedDict[tuple, _BoundaryEntry] = OrderedDict()
        self._index: RTopkIndex | None = None
        self._index_token: object = None
        self.counters = ReverseCounters()

    @property
    def registry(self) -> UserWeightRegistry:
        return self._registry

    @property
    def cached_boundaries(self) -> int:
        """Live per-user boundary entries (introspection)."""
        return len(self._entries)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def query(
        self,
        item: ItemId,
        k: int,
        *,
        database,
        token: object,
        cacheable: bool = True,
    ) -> ReverseResult:
        """Answer ``reverse_topk(item, k)`` against one snapshot.

        ``database`` is the columnar snapshot to prune against;
        ``token`` identifies it (the index rebuilds when it changes).
        ``cacheable`` gates the boundary cache: the cached entries are
        maintained to the *live* epoch, so a query served off a stale
        deferred snapshot must neither read nor seed them.
        """
        started = time.perf_counter()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if database.n == 0 or item not in database.item_ids:
            raise UnknownItemError(f"item {item} is not in the database")
        entries, weights = self._registry.aligned(database.m)
        counters = self.counters
        counters.queries += 1
        if not entries:
            return ReverseResult(
                item=item,
                k=k,
                users=(),
                stats=ReverseQueryStats(
                    users=0,
                    bound_in=0,
                    bound_out=0,
                    boundary_hits=0,
                    fallbacks=0,
                    seconds=time.perf_counter() - started,
                ),
            )
        if self._index is None or self._index_token != token:
            self._index = RTopkIndex(database)
            self._index_token = token
        item_scores = np.asarray(
            database.local_scores(item), dtype=np.float64
        )
        in_mask, out_mask, _ = self._index.decide(weights, item_scores, k)
        matched = [entries[i].user for i in np.flatnonzero(in_mask)]
        boundary_hits = fallbacks = 0
        for index in np.flatnonzero(~in_mask & ~out_mask):
            user = entries[index]
            member, fallback = self._decide_exact(user, k, item, cacheable)
            if member:
                matched.append(user.user)
            boundary_hits += not fallback
            fallbacks += fallback
        bound_in = int(np.count_nonzero(in_mask))
        bound_out = int(np.count_nonzero(out_mask))
        counters.bound_in += bound_in
        counters.bound_out += bound_out
        counters.boundary_hits += boundary_hits
        counters.fallbacks += fallbacks
        matched.sort()
        return ReverseResult(
            item=item,
            k=k,
            users=tuple(matched),
            stats=ReverseQueryStats(
                users=len(entries),
                bound_in=bound_in,
                bound_out=bound_out,
                boundary_hits=boundary_hits,
                fallbacks=fallbacks,
                seconds=time.perf_counter() - started,
            ),
        )

    def _decide_exact(
        self, user, k: int, item: ItemId, cacheable: bool
    ) -> tuple[bool, bool]:
        """Membership via the user's (cached or fresh) exact top-k.

        Returns ``(is_member, was_fallback)``.
        """
        key = (user.user, user.version, k)
        entry = self._entries.get(key) if cacheable else None
        fallback = entry is None
        if fallback:
            items = tuple(self._runner(user.scoring, k))
            entry = _BoundaryEntry(k, user.scoring, items)
            if cacheable and self._boundary_limit > 0:
                self._entries[key] = entry
                while len(self._entries) > self._boundary_limit:
                    self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(key)
        # The runner and the maintenance both keep entries in the
        # canonical (-score, id) order, so plain membership is exact —
        # boundary ties resolve by ascending id, same as the oracle.
        return item in entry.members, fallback

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def on_mutation(self, event) -> None:
        """Maintain every cached boundary entry against one mutation.

        Entries the certificate proves unaffected stay; small exact
        repairs are patched in place from the event's score vector; the
        rest drop (and re-decide lazily).  An event without a score
        vector (capture was off) is unreasonable-about: flush.
        """
        if not self._entries:
            return
        if event.kind != "remove_item" and event.new_scores is None:
            self.flush()
            return
        folded = {event.item: event.new_scores}
        counters = self.counters
        for key, entry in list(self._entries.items()):
            verdict, touched = certify.classify_delta(
                entry.members,
                entry.boundary,
                (event,),
                entry.scoring,
                patch_limit=self._patch_limit,
                exhaustive=entry.exhaustive,
            )
            if verdict == certify.UNCHANGED:
                counters.maintenance_unchanged += 1
                continue
            if verdict == certify.PATCH:
                merged = certify.patch_entries(
                    entry.items,
                    touched,
                    entry.boundary,
                    entry.scoring,
                    lambda items: {i: folded.get(i) for i in items},
                    k=entry.k,
                    exhaustive=entry.exhaustive,
                )
                if merged is not None:
                    entry._install(merged)
                    counters.maintenance_patched += 1
                    continue
            del self._entries[key]
            counters.maintenance_dropped += 1

    def flush(self) -> None:
        """Drop every cached boundary entry (counters are preserved)."""
        if self._entries:
            self._entries.clear()
        self.counters.flushes += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReverseTopkEngine users={len(self._registry)} "
            f"boundaries={len(self._entries)}>"
        )
