"""Per-snapshot monotone score bounds for reverse top-k pruning.

For one user with non-negative weights ``w`` the reverse membership
question — *is item q inside this user's top-k?* — reduces to comparing
``f_w(q)`` against the user's k-th-best overall score ``B_k(w)`` (the
score half of the k-th-entry certificate the certified merge exposes as
``extras["certificate_threshold"]``).  Computing ``B_k(w)`` exactly
costs a top-k run per user; this index instead brackets it from three
per-list order statistics of the columnar snapshot, all O(1) reads off
the rank-sorted score columns:

``top1[j]``  the best local score in list ``j``,
``kth[j]``   the k-th best local score in list ``j``,
``mins[j]``  the worst local score in list ``j``.

**Lower bound.**  The ``k`` items heading list ``j`` each have overall
score at least ``w_j * kth[j] + sum_{i != j} w_i * mins[i]`` (their
list-``j`` score is at least ``kth[j]``; every other coordinate is at
least that list's minimum).  ``k`` items reach that value, so::

    B_k(w) >= L(w) = (w . mins) + max_j w_j * (kth[j] - mins[j])

**Upper bound.**  Among any ``k`` distinct items at most ``k - 1`` can
exceed list ``j``'s k-th local score, so some true top-k member x has
``x_j <= kth[j]`` and therefore ``f_w(x) <= w_j * kth[j] +
sum_{i != j} w_i * top1[i]``.  The k-th best is at most that member::

    B_k(w) <= U(w) = (w . top1) + min_j w_j * (kth[j] - top1[j])

Both derivations hold in real arithmetic for any non-negative ``w``
(scores may be negative).  The float computation — NumPy dot products
here, compensated ``math.fsum`` aggregates in the engine and the oracle
— perturbs each side by at most a few ulps of the user's score scale
``S(w) = sum_i w_i * max(|top1[i]|, |mins[i]|)``, and two real values
within one ulp can still round to equal ``fsum`` aggregates (an exact
tie under the library's ``(-score, id)`` order).  The per-user ``slack
= 8 * (m + 4) * eps * S(w)`` strictly dominates both effects, so the
engine's decisions are sound::

    f_w(q) > U(w) + slack  =>  q is IN  every valid top-k answer
    f_w(q) < L(w) - slack  =>  q is OUT of every valid top-k answer

and everything in between falls back to the user's exact certified
top-k.  ``tests/unit/test_reverse.py`` asserts the bracket against the
brute-force ``B_k(w)`` across every datagen family.
"""

from __future__ import annotations

import numpy as np

from repro.columnar import ColumnarDatabase

#: Multiplier on ``(m + 4) * eps * scale`` — see the module docstring.
_SLACK_FACTOR = 8.0


class RTopkIndex:
    """Snapshot-bound order statistics and the derived per-user bounds.

    One index serves one immutable :class:`ColumnarDatabase`; the
    engine rebuilds it when the service swaps snapshots.  Per-``k``
    list statistics and per-``(W, k)`` user bounds are cached — the
    registry's weight matrix is itself cached per registry version, so
    steady-state reverse queries reuse both.
    """

    __slots__ = ("_database", "_top1", "_mins", "_kth", "_user_bounds")

    def __init__(self, database: ColumnarDatabase) -> None:
        self._database = database
        n = database.n
        self._top1 = np.array(
            [lst.scores_array[0] for lst in database.lists], dtype=np.float64
        )
        self._mins = np.array(
            [lst.scores_array[n - 1] for lst in database.lists],
            dtype=np.float64,
        )
        self._kth: dict[int, np.ndarray] = {}
        #: ``(id(W), k) -> (W, lower, upper, slack)`` — ``W`` is pinned
        #: so CPython id reuse can never alias a dead matrix.
        self._user_bounds: dict[tuple[int, int], tuple] = {}

    @property
    def database(self) -> ColumnarDatabase:
        return self._database

    def list_kth(self, k: int) -> np.ndarray:
        """``kth[j]`` = the k-th best local score of list ``j``."""
        if not 1 <= k <= self._database.n:
            raise ValueError(
                f"k must be in 1..{self._database.n}, got {k}"
            )
        cached = self._kth.get(k)
        if cached is None:
            cached = np.array(
                [lst.scores_array[k - 1] for lst in self._database.lists],
                dtype=np.float64,
            )
            self._kth[k] = cached
        return cached

    def user_bounds(
        self, weights: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(lower, upper, slack)`` per user row of ``weights``.

        ``lower - slack <= B_k(w) <= upper + slack`` for every row
        ``w`` (see the module docstring for the derivation and the
        float-error budget the slack absorbs).
        """
        key = (id(weights), k)
        cached = self._user_bounds.get(key)
        if cached is not None and cached[0] is weights:
            return cached[1], cached[2], cached[3]
        kth = self.list_kth(k)
        m = self._database.m
        lower = weights @ self._mins + np.max(
            weights * (kth - self._mins)[np.newaxis, :], axis=1
        )
        upper = weights @ self._top1 + np.min(
            weights * (kth - self._top1)[np.newaxis, :], axis=1
        )
        scale = weights @ np.maximum(np.abs(self._top1), np.abs(self._mins))
        slack = _SLACK_FACTOR * (m + 4) * np.finfo(np.float64).eps * scale
        if len(self._user_bounds) >= 32:
            # A churning registry mints a fresh matrix per version; the
            # pin keeps each alive, so bound the memo instead of
            # scanning for dead ones.
            self._user_bounds.clear()
        self._user_bounds[key] = (weights, lower, upper, slack)
        return lower, upper, slack

    def decide(
        self, weights: np.ndarray, item_scores: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Classify every user: ``(in_mask, out_mask, aggregates)``.

        ``in_mask[u]`` — the item provably sits inside user ``u``'s
        top-k; ``out_mask[u]`` — provably outside; neither — undecided,
        the caller must consult that user's exact boundary.  With
        ``k >= n`` every existing item is in everyone's top-k and both
        masks short-circuit accordingly.
        """
        users = weights.shape[0]
        aggregates = weights @ item_scores
        if k >= self._database.n:
            return (
                np.ones(users, dtype=bool),
                np.zeros(users, dtype=bool),
                aggregates,
            )
        lower, upper, slack = self.user_bounds(weights, k)
        in_mask = aggregates > upper + slack
        out_mask = aggregates < lower - slack
        return in_mask, out_mask, aggregates
