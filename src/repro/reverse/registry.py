"""Per-user weight vectors, versioned for safe downstream caching.

The registry is deliberately dumb storage: it owns no database and no
query state, just the ``user -> WeightedSumScoring`` mapping plus a
monotone version clock.  Every change (add, update, remove) bumps the
clock and stamps the touched user with it, so anything cached per user
— the reverse engine's boundary entries, the aligned weight matrix —
keys on ``(user, version)`` and can never alias a changed vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ScoringError
from repro.scoring import WeightedSumScoring


@dataclass(frozen=True)
class RegisteredUser:
    """One user's weight vector and the registry clock that stamped it."""

    user: str
    scoring: WeightedSumScoring
    version: int

    @property
    def weights(self) -> tuple[float, ...]:
        return self.scoring.weights


class UserWeightRegistry:
    """A versioned ``user -> WeightedSumScoring`` mapping.

    Weight vectors are validated by ``WeightedSumScoring`` itself
    (non-negative, at least one strictly positive weight); the registry
    additionally rejects duplicate adds and updates/removes of unknown
    users, so callers cannot silently clobber one another's vectors.
    """

    __slots__ = ("_users", "_clock", "_matrix_cache")

    def __init__(self) -> None:
        self._users: dict[str, RegisteredUser] = {}
        self._clock = 0
        #: ``(clock, m) -> (users, versions, scorings, weight matrix)``
        self._matrix_cache: tuple | None = None

    # ------------------------------------------------------------------
    # Mutation (every path bumps the clock)
    # ------------------------------------------------------------------

    def _coerce(self, weights) -> WeightedSumScoring:
        if isinstance(weights, WeightedSumScoring):
            return weights
        return WeightedSumScoring(weights)

    def add(self, user: str, weights) -> RegisteredUser:
        """Register a new user; adding an existing one is an error."""
        if user in self._users:
            raise ValueError(f"user {user!r} is already registered")
        self._clock += 1
        entry = RegisteredUser(
            user=str(user), scoring=self._coerce(weights), version=self._clock
        )
        self._users[entry.user] = entry
        self._matrix_cache = None
        return entry

    def update(self, user: str, weights) -> RegisteredUser:
        """Replace an existing user's vector; unknown users are an error."""
        if user not in self._users:
            raise KeyError(f"user {user!r} is not registered")
        self._clock += 1
        entry = RegisteredUser(
            user=str(user), scoring=self._coerce(weights), version=self._clock
        )
        self._users[entry.user] = entry
        self._matrix_cache = None
        return entry

    def remove(self, user: str) -> None:
        """Drop a user; unknown users are an error."""
        if user not in self._users:
            raise KeyError(f"user {user!r} is not registered")
        self._clock += 1
        del self._users[user]
        self._matrix_cache = None

    def seed_users(
        self, count: int, m: int, *, seed: int = 0, prefix: str = "user-"
    ) -> tuple[str, ...]:
        """Register ``count`` users with seeded random weight vectors.

        Weights are drawn uniformly from ``(0, 1]`` (never all-zero),
        deterministically from ``seed`` — the CLI demo, the workload
        replay and the benchmark all build their populations this way
        so two runs see byte-identical registries.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        rng = np.random.default_rng(seed)
        width = max(3, len(str(max(count - 1, 0))))
        names = []
        for index in range(count):
            weights = (1.0 - rng.random(m)).tolist()  # uniform over (0, 1]
            names.append(self.add(f"{prefix}{index:0{width}d}", weights))
        return tuple(entry.user for entry in names)

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """The registry clock: bumped by every add/update/remove."""
        return self._clock

    def get(self, user: str) -> RegisteredUser:
        entry = self._users.get(user)
        if entry is None:
            raise KeyError(f"user {user!r} is not registered")
        return entry

    def __contains__(self, user: str) -> bool:
        return user in self._users

    def __len__(self) -> int:
        return len(self._users)

    def __iter__(self) -> Iterator[RegisteredUser]:
        return iter(self.entries())

    def users(self) -> tuple[str, ...]:
        """Registered user ids, ascending."""
        return tuple(sorted(self._users))

    def entries(self) -> tuple[RegisteredUser, ...]:
        """All registered users, ordered by user id."""
        return tuple(self._users[user] for user in sorted(self._users))

    def aligned(
        self, m: int
    ) -> tuple[tuple[RegisteredUser, ...], np.ndarray]:
        """Every user plus the ``(len(users), m)`` weight matrix.

        Rows follow :meth:`entries` order.  A user whose vector length
        disagrees with the database's ``m`` is a caller error (their
        aggregates would be undefined), reported eagerly here rather
        than as a shape crash deep in a kernel.  Cached per registry
        version — the matrix is rebuilt only after a registry change.
        """
        cached = self._matrix_cache
        if cached is not None and cached[0] == (self._clock, m):
            return cached[1], cached[2]
        entries = self.entries()
        for entry in entries:
            if len(entry.weights) != m:
                raise ScoringError(
                    f"user {entry.user!r} has {len(entry.weights)} weights "
                    f"but the database has m={m} lists"
                )
        matrix = np.array(
            [entry.weights for entry in entries], dtype=np.float64
        ).reshape(len(entries), m)
        matrix.flags.writeable = False
        self._matrix_cache = ((self._clock, m), entries, matrix)
        return entries, matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<UserWeightRegistry {len(self._users)} users "
            f"v{self._clock}>"
        )
