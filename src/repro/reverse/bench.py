"""Pruned reverse top-k vs naive per-user evaluation, measured.

The reverse engine's claim is about work per query: with ``U``
registered users, the naive answer runs ``U`` full top-k evaluations
per reverse query, while the engine settles most users with two
vectorized bound comparisons and runs (or reuses) an exact top-k only
for the undecided few — and under mutations, maintains those cached
boundaries incrementally instead of recomputing them.

:func:`reverse_speedup_benchmark` measures both modes over identical
seeded query/mutation streams:

* **pruned** — queries go through :meth:`QueryService.submit_reverse`
  (bounds, boundary cache, certified maintenance);
* **naive** — the same queries run :func:`brute_force_reverse_topk`
  (one brute-force top-k per registered user, no reuse).

Both phases — a static warm-up and a mutating stream — verify the
pruned answers bit-exactly against the naive oracle outside the timed
path.  The report (``reports/reverse_speedup.json``) carries wall
clock, per-user decision tallies and maintenance outcomes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.datagen import make_generator
from repro.reverse.oracle import brute_force_reverse_topk
from repro.service.service import QueryService
from repro.service.workload import WorkloadMutator, dynamic_from


def reverse_speedup_benchmark(
    *,
    generator: str = "uniform",
    n: int = 1500,
    m: int = 4,
    seed: int = 13,
    users: int = 48,
    queries: int = 40,
    mutations: int = 60,
    k: int = 10,
    verify: bool = True,
) -> dict:
    """Measure pruned vs naive reverse top-k over one seeded stream."""
    static = make_generator(generator).generate(n, m, seed=seed)
    source = dynamic_from(static)
    service = QueryService(source, shards=1, pool="serial")
    rng = np.random.default_rng(seed + 1)
    with service:
        registry = service.reverse_registry
        registry.seed_users(users, m, seed=seed + 2)
        mutator = WorkloadMutator(source, rng)

        def draw_item():
            ids = mutator.ids
            return ids[int(rng.integers(len(ids)))]

        # ------------------------------------------------------ static
        static_items = [draw_item() for _ in range(queries)]
        pruned_static = 0.0
        answers = []
        for item in static_items:
            started = time.perf_counter()
            answers.append(service.submit_reverse(item, k))
            pruned_static += time.perf_counter() - started
        naive_static = 0.0
        static_mismatches = 0
        for item, result in zip(static_items, answers):
            started = time.perf_counter()
            expected = brute_force_reverse_topk(source, registry, item, k)
            naive_static += time.perf_counter() - started
            if verify and result.users != expected:
                static_mismatches += 1

        # ---------------------------------------------------- mutating
        pruned_mutating = naive_mutating = 0.0
        mutating_mismatches = 0
        for _step in range(mutations):
            mutator.apply_one()
            item = draw_item()
            started = time.perf_counter()
            result = service.submit_reverse(item, k)
            pruned_mutating += time.perf_counter() - started
            started = time.perf_counter()
            expected = brute_force_reverse_topk(source, registry, item, k)
            naive_mutating += time.perf_counter() - started
            if verify and result.users != expected:
                mutating_mismatches += 1

        counters = service.reverse_engine.counters

    def _ratio(a: float, b: float) -> float:
        return a / b if b > 0 else float("inf")

    decisions = counters.bound_in + counters.bound_out
    decisions += counters.boundary_hits + counters.fallbacks
    mismatches = static_mismatches + mutating_mismatches
    return {
        "config": {
            "generator": generator,
            "n": n,
            "m": m,
            "seed": seed,
            "users": users,
            "queries": queries,
            "mutations": mutations,
            "k": k,
        },
        "pruned": {
            "seconds_static": pruned_static,
            "seconds_mutating": pruned_mutating,
            "decisions": {
                "bound_in": counters.bound_in,
                "bound_out": counters.bound_out,
                "boundary_hits": counters.boundary_hits,
                "fallbacks": counters.fallbacks,
            },
            "pruned_fraction": (
                (counters.bound_in + counters.bound_out) / decisions
                if decisions
                else 0.0
            ),
            "maintenance": {
                "unchanged": counters.maintenance_unchanged,
                "patched": counters.maintenance_patched,
                "dropped": counters.maintenance_dropped,
                "flushes": counters.flushes,
            },
        },
        "naive": {
            "seconds_static": naive_static,
            "seconds_mutating": naive_mutating,
            "topk_runs": users * (queries + mutations),
        },
        "speedup": {
            "static": _ratio(naive_static, pruned_static),
            "mutating": _ratio(naive_mutating, pruned_mutating),
            "overall": _ratio(
                naive_static + naive_mutating,
                pruned_static + pruned_mutating,
            ),
        },
        "verified": (mismatches == 0) if verify else None,
        "mismatches": mismatches if verify else None,
    }
