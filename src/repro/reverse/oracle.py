"""The reverse top-k correctness oracle.

Reverse membership is defined against the library's one true oracle
(:func:`repro.algorithms.naive.brute_force_topk`, compensated ``fsum``
aggregates, ``(-score, id)`` tie order): a user matches exactly when
the item appears in their brute-forced top-k.  Every engine answer in
the differential suite is held to this, bit-exact membership included —
ties at the k-th slot resolve by ascending id, never by which tied item
an engine happened to keep.
"""

from __future__ import annotations

from repro.algorithms.naive import brute_force_topk
from repro.errors import UnknownItemError
from repro.reverse.registry import UserWeightRegistry
from repro.types import ItemId


def brute_force_reverse_topk(
    database, registry: UserWeightRegistry, item: ItemId, k: int
) -> tuple[str, ...]:
    """Every registered user whose exact top-k contains ``item``.

    ``database`` is anything :func:`brute_force_topk` scans (a static
    :class:`~repro.lists.Database` or a live
    :class:`~repro.dynamic.DynamicDatabase`); one full top-k runs per
    registered user, so this is strictly a test/benchmark oracle.
    Returns user ids ascending.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if item not in database.item_ids:
        raise UnknownItemError(f"item {item} is not in the database")
    matched = []
    for entry in registry.entries():
        ranked = brute_force_topk(database, k, entry.scoring)
        if any(scored.item == item for scored in ranked):
            matched.append(entry.user)
    return tuple(matched)
