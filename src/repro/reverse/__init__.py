"""Reverse top-k queries over the unified execution core.

A *reverse top-k* query inverts the service's usual question: instead
of "which items rank highest for this user's weights", it asks **"which
users' weight vectors rank this item inside their top-k"** (the
monochromatic reverse top-k of Vlachou et al. / Chester et al.).  For a
personalization service this is the influence question — whose front
page does this item reach? — and on a database already organized for
BPA-style sorted/random access it can be answered exactly without
running one top-k per user:

* :class:`UserWeightRegistry` holds the per-user
  :class:`~repro.scoring.WeightedSumScoring` vectors (add / update /
  remove, versioned so cached per-user state can never alias a changed
  vector);
* :class:`RTopkIndex` derives, per snapshot, monotone lower/upper
  bounds on every user's k-th-best overall score from three per-list
  order statistics, deciding most users IN or OUT with two vectorized
  comparisons;
* :class:`ReverseTopkEngine` glues them to an execution runner: the
  users the bounds leave undecided fall back to a per-user certified
  top-k, whose answer (and k-th-entry certificate) is cached and then
  maintained incrementally under :class:`~repro.dynamic.MutationEvent`
  streams through the shared :mod:`repro.exec.certify` reasoning.

:meth:`repro.service.QueryService.submit_reverse` is the serving
entry point; :func:`brute_force_reverse_topk` is the oracle the
differential suite holds it to, bit-exact membership included.
"""

from repro.reverse.engine import (
    ReverseCounters,
    ReverseResult,
    ReverseTopkEngine,
)
from repro.reverse.index import RTopkIndex
from repro.reverse.oracle import brute_force_reverse_topk
from repro.reverse.registry import RegisteredUser, UserWeightRegistry

__all__ = [
    "RTopkIndex",
    "RegisteredUser",
    "ReverseCounters",
    "ReverseResult",
    "ReverseTopkEngine",
    "UserWeightRegistry",
    "brute_force_reverse_topk",
]
