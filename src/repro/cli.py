"""Command-line interface.

Examples::

    repro-topk query --generator uniform --n 10000 --m 8 --k 20
    repro-topk figure fig3
    repro-topk figure all --scale smoke
    repro-topk paper-examples
    repro-topk adversarial --m 6 --u 5
    repro-topk distributed --n 2000 --m 6 --k 10
    repro-topk distributed --transport socket --protocol pipelined \
               --block-width 8 --verify
    repro-topk bench compare-backends --n 10000 --m 3 --queries 100
    repro-topk serve-workload --n 100000 --m 3 --shards 4 --queries 400
    repro-topk serve-workload --shards auto --async-mode --concurrency 8
    repro-topk serve-workload --speedup    # the service_speedup.json grid
    repro-topk dist-bench                  # distributed_speedup.json
    repro-topk cluster serve --snapshot db.bpsn --owners 2 --spec-out spec.json
    repro-topk serve-workload --cluster-spec spec.json --verify
    repro-topk cluster stats --spec spec.json
    repro-topk cluster bench               # cluster_speedup.json

(Equivalently ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.algorithms.base import get_algorithm, known_algorithms
from repro.bench.config import resolve_scale
from repro.bench.experiments import get_figure, list_figures, speedup_factors
from repro.datagen.adversarial import bpa2_favorable_database, bpa_favorable_database
from repro.datagen.base import make_generator
from repro.datagen.figures import figure1_database, figure2_database
from repro.types import CostModel


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-topk",
        description="Reproduction of 'Best Position Algorithms for Top-k Queries' (VLDB 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="run one top-k query and report costs")
    query.add_argument("--generator", default="uniform",
                       choices=("uniform", "gaussian", "correlated", "zipf"))
    query.add_argument("--alpha", type=float, default=0.01,
                       help="correlation parameter (correlated generator only)")
    query.add_argument("--n", type=int, default=10_000)
    query.add_argument("--m", type=int, default=8)
    query.add_argument("--k", type=int, default=20)
    query.add_argument("--seed", type=int, default=42)
    query.add_argument("--algorithms", nargs="+", default=["ta", "bpa", "bpa2"])

    figure = sub.add_parser("figure", help="reproduce a paper figure (or 'all')")
    figure.add_argument("name", help=f"one of {list_figures()} or 'all'")
    figure.add_argument("--scale", default=None,
                        help="smoke | default | paper (or set REPRO_SCALE)")
    figure.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    figure.add_argument("--out", default=None, metavar="DIR",
                        help="also write <fig>.txt/.csv/.json under DIR")

    sub.add_parser("paper-examples",
                   help="replay the worked examples of Figures 1 and 2")

    adversarial = sub.add_parser(
        "adversarial", help="demonstrate the Lemma 3 / Theorem 8 worst cases"
    )
    adversarial.add_argument("--m", type=int, default=6)
    adversarial.add_argument("--u", type=int, default=5)
    adversarial.add_argument("--k", type=int, default=3)

    trace = sub.add_parser(
        "trace", help="round-by-round TA vs BPA trace on a small database"
    )
    trace.add_argument("--n", type=int, default=30)
    trace.add_argument("--m", type=int, default=3)
    trace.add_argument("--k", type=int, default=3)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--figure1", action="store_true",
                       help="trace the paper's Figure 1 database instead")

    distributed = sub.add_parser(
        "distributed", help="compare message counts of the distributed drivers"
    )
    distributed.add_argument("--n", type=int, default=2_000)
    distributed.add_argument("--m", type=int, default=6)
    distributed.add_argument("--k", type=int, default=10)
    distributed.add_argument("--seed", type=int, default=42)
    distributed.add_argument("--generator", default="uniform",
                             choices=("uniform", "gaussian", "correlated"))
    distributed.add_argument("--alpha", type=float, default=0.01)
    distributed.add_argument("--transport", default="simulated",
                             choices=("simulated", "local", "socket"),
                             help="simulated in-process network, local "
                                  "columnar arrays, or real multi-process "
                                  "TCP owners")
    distributed.add_argument("--protocol", default="entry",
                             choices=("entry", "batch", "pipelined"),
                             help="wire protocol (pipelined = batched "
                                  "messages as overlapped waves)")
    distributed.add_argument("--block-width", type=int, default=1,
                             help="sorted/direct block width (>1 runs the "
                                  "*-block round planners)")
    distributed.add_argument("--verify", action="store_true",
                             help="cross-check every answer against the "
                                  "reference single-node algorithm and exit "
                                  "non-zero on any mismatch")

    bench = sub.add_parser(
        "bench", help="throughput benchmarks over the storage backends"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    compare = bench_sub.add_parser(
        "compare-backends",
        help="batch the same queries through the pure-Python and columnar "
             "backends, verify identical results, report the speedup",
    )
    compare.add_argument("--n", type=int, default=10_000)
    compare.add_argument("--m", type=int, default=3)
    compare.add_argument("--k", type=int, default=20,
                         help="queries cycle k over 1..K")
    compare.add_argument("--queries", type=int, default=100)
    compare.add_argument("--algorithm", default="bpa2")
    compare.add_argument("--generator", default="uniform",
                         choices=("uniform", "gaussian", "correlated", "zipf"))
    compare.add_argument("--seed", type=int, default=42)
    compare.add_argument("--repeats", type=int, default=3,
                         help="time each backend this many times, keep the best")
    compare.add_argument("--out", default=None, metavar="FILE",
                         help="also write the JSON report to FILE")

    serve = sub.add_parser(
        "serve-workload",
        help="replay a zipf-popular query workload through the sharded "
             "QueryService and write a reports/service_*.json summary",
    )
    serve.add_argument("--generator", default="uniform",
                       choices=("uniform", "gaussian", "correlated", "zipf"))
    serve.add_argument("--alpha", type=float, default=None,
                       help="correlation parameter (correlated generator only)")
    serve.add_argument("--n", type=int, default=100_000)
    serve.add_argument("--m", type=int, default=3)
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--queries", type=int, default=400,
                       help="replayed queries")
    serve.add_argument("--distinct", type=int, default=40,
                       help="distinct query shapes in the pool")
    serve.add_argument("--k-max", type=int, default=20,
                       help="per-query k is drawn from 1..K_MAX")
    serve.add_argument("--zipf-theta", type=float, default=1.0,
                       help="popularity skew over the query pool "
                            "(0 = uniform traffic)")
    serve.add_argument("--algorithm", default="auto",
                       help="algorithm per query ('auto' lets the planner pick)")
    serve.add_argument("--key-skew", type=float, default=None, metavar="THETA",
                       help="phased workloads: per-phase Zipf theta over a "
                            "fresh query pool (default: --zipf-theta)")
    serve.add_argument("--adversarial-ratio", type=float, default=0.0,
                       metavar="P",
                       help="replace each query with probability P by a "
                            "deep-k outlier (k in K_MAX+1..4*K_MAX; the "
                            "planner clamps k to n, answers stay exact)")
    serve.add_argument("--phase-shift", type=int, default=0, metavar="N",
                       help="shift the workload's shape N times mid-replay "
                            "(alternating narrow-k and deep-k phases over "
                            "fresh pools) to exercise drift re-tuning")
    serve.add_argument("--adaptive", action="store_true",
                       help="serve with ServicePolicy(adaptive=True): "
                            "feedback-calibrated planning, online block-"
                            "width tuning, drift-aware re-tuning")
    serve.add_argument("--adaptive-speedup", action="store_true",
                       help="run the adaptive-vs-static-width grid on a "
                            "phase-shifting workload (oracle-verified; "
                            "writes reports/adaptive_speedup.json)")
    serve.add_argument("--shards", default="4",
                       help="shard count, or 'auto' to let the planner's "
                            "cost model pick it (default: 4)")
    serve.add_argument("--pool", default="auto",
                       choices=("auto", "serial", "thread", "process"))
    serve.add_argument("--cache-size", type=int, default=1024)
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    serve.add_argument("--async-mode", action="store_true",
                       help="replay through submit_async/gather_many "
                            "instead of the serial submit_many")
    serve.add_argument("--concurrency", type=int, default=8,
                       help="bounded concurrency for --async-mode")
    serve.add_argument("--mutation-rate", type=float, default=0.0,
                       metavar="R",
                       help="serve a live DynamicDatabase and apply ~R random "
                            "mutations (update/insert/remove) before each "
                            "query — the delta-aware cache replay mode")
    serve.add_argument("--reverse-rate", type=float, default=0.0,
                       metavar="R",
                       help="also issue a reverse top-k query (which "
                            "registered users rank a random item in their "
                            "top k?) after each forward query with "
                            "probability R; implies the live-database "
                            "replay path")
    serve.add_argument("--reverse-users", type=int, default=32,
                       help="seeded weight vectors registered for "
                            "--reverse-rate (default: 32)")
    serve.add_argument("--reverse-k", type=int, default=10,
                       help="k for the interleaved reverse queries "
                            "(default: 10)")
    serve.add_argument("--verify", action="store_true",
                       help="cross-check every served answer against a "
                            "brute-force ranking of the current data "
                            "(bit-identical scores, honest aggregates); "
                            "exit non-zero on any mismatch")
    serve.add_argument("--out", default=None, metavar="FILE",
                       help="report path (default: reports/service_workload.json)")
    serve.add_argument("--smoke", action="store_true",
                       help="tiny CI preset (n=2000, 60 queries, 2 shards, "
                            "serial pool; writes reports/service_smoke.json)")
    serve.add_argument("--speedup", action="store_true",
                       help="run the unsharded-vs-sharded x cold-vs-warm grid "
                            "benchmark (writes reports/service_speedup.json)")
    serve.add_argument("--snapshot-in", default=None, metavar="FILE",
                       help="warm-start the service from an epoch-stamped "
                            ".bpsn snapshot instead of generating the "
                            "database (with --mutation-rate the snapshot "
                            "seeds the live DynamicDatabase)")
    serve.add_argument("--snapshot-out", default=None, metavar="FILE",
                       help="after the replay, atomically persist the "
                            "service's snapshot (epoch-stamped, "
                            "checksummed, compressed) to FILE")
    serve.add_argument("--watch-port", type=int, default=None, metavar="PORT",
                       help="with --mutation-rate: also serve standing "
                            "subscriptions (watch/delta/unwatch push "
                            "frames) on PORT while the replay mutates — "
                            "tail them with 'repro-topk watch --port PORT' "
                            "from another process")
    serve.add_argument("--watch-wait", type=float, default=0.0,
                       metavar="SECONDS",
                       help="with --watch-port: wait up to SECONDS for the "
                            "first subscription before starting the replay")
    serve.add_argument("--cluster-spec", default=None, metavar="FILE",
                       help="hammer a running owner-daemon cluster (spec "
                            "from 'cluster serve --spec-out') instead of "
                            "building a service; with --verify every "
                            "answer (items and access tallies) is checked "
                            "against the snapshot's reference ranking")

    watch = sub.add_parser(
        "watch",
        help="tail a standing top-k subscription's pushed deltas from a "
             "watch server, or benchmark push vs re-query (--speedup)",
    )
    watch.add_argument("--port", type=int, default=None,
                       help="watch server port (see serve-workload "
                            "--watch-port)")
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--algorithm", default="auto",
                       help="algorithm for the standing query "
                            "('auto' lets the planner pick)")
    watch.add_argument("--k", type=int, default=10)
    watch.add_argument("--scoring", default="sum",
                       choices=("sum", "min", "max", "average"))
    watch.add_argument("--max-deltas", type=int, default=None, metavar="N",
                       help="stop tailing after N deltas (default: until "
                            "the server closes)")
    watch.add_argument("--poll-timeout", type=float, default=0.5,
                       metavar="SECONDS",
                       help="poll granularity while tailing")
    watch.add_argument("--speedup", action="store_true",
                       help="run the push-vs-re-query benchmark (writes "
                            "reports/watch_speedup.json; no server needed)")
    watch.add_argument("--subscribers", type=int, default=4,
                       help="--speedup: concurrent subscriptions")
    watch.add_argument("--mutations", type=int, default=150,
                       help="--speedup: mutations driven through the stream")
    watch.add_argument("--n", type=int, default=400,
                       help="--speedup: database size")
    watch.add_argument("--m", type=int, default=3)
    watch.add_argument("--generator", default="uniform",
                       choices=("uniform", "gaussian", "correlated", "zipf"))
    watch.add_argument("--seed", type=int, default=11)
    watch.add_argument("--no-verify", action="store_true",
                       help="--speedup: skip the per-mutation brute-force "
                            "verification of every client mirror")
    watch.add_argument("--out", default=None, metavar="FILE",
                       help="--speedup report path "
                            "(default: reports/watch_speedup.json)")

    reverse = sub.add_parser(
        "reverse",
        help="reverse top-k demo over seeded user weight vectors (which "
             "users rank an item in their top k?), or benchmark pruned "
             "vs naive per-user evaluation (--speedup)",
    )
    reverse.add_argument("--n", type=int, default=1_500,
                         help="database size")
    reverse.add_argument("--m", type=int, default=4)
    reverse.add_argument("--k", type=int, default=10)
    reverse.add_argument("--users", type=int, default=48,
                         help="seeded weight vectors to register")
    reverse.add_argument("--queries", type=int, default=20,
                         help="reverse queries over random items")
    reverse.add_argument("--generator", default="uniform",
                         choices=("uniform", "gaussian", "correlated",
                                  "zipf"))
    reverse.add_argument("--seed", type=int, default=13)
    reverse.add_argument("--item", type=int, default=None,
                         help="query this one item id instead of random "
                              "items and list every matching user")
    reverse.add_argument("--no-verify", action="store_true",
                         help="skip the per-query brute-force oracle check")
    reverse.add_argument("--speedup", action="store_true",
                         help="run the pruned-vs-naive benchmark with an "
                              "interleaved mutation phase (writes "
                              "reports/reverse_speedup.json)")
    reverse.add_argument("--mutations", type=int, default=60,
                         help="--speedup: mutations in the mutating phase")
    reverse.add_argument("--out", default=None, metavar="FILE",
                         help="--speedup report path "
                              "(default: reports/reverse_speedup.json)")

    verify_snap = sub.add_parser(
        "verify-snapshot",
        help="audit a .bpsn snapshot file: checksums, canonical sort "
             "order, rank/index cross-validation; optionally repair",
    )
    verify_snap.add_argument("path", help="snapshot file to audit")
    verify_snap.add_argument("--repair", action="store_true",
                             help="rebuild damaged index sections from "
                                  "intact rank sections and rewrite the "
                                  "file atomically")

    dist_bench = sub.add_parser(
        "dist-bench",
        help="measure the batched wire protocol's message/byte savings and "
             "async-vs-serial service throughput "
             "(writes reports/distributed_speedup.json)",
    )
    dist_bench.add_argument("--n", type=int, default=2_000)
    dist_bench.add_argument("--m", type=int, default=5)
    dist_bench.add_argument("--k", type=int, default=10)
    dist_bench.add_argument("--generator", default="uniform",
                            choices=("uniform", "gaussian", "correlated",
                                     "zipf"))
    dist_bench.add_argument("--seed", type=int, default=42)
    dist_bench.add_argument("--queries", type=int, default=120,
                            help="queries in the async-vs-serial replay")
    dist_bench.add_argument("--concurrency", type=int, default=8)
    dist_bench.add_argument("--transport", default="all",
                            choices=("simulated", "socket", "all"),
                            help="which transports to measure (socket = "
                                 "multi-process TCP owners, wall-clock rows)")
    dist_bench.add_argument("--protocol", default="all",
                            choices=("entry", "batch", "pipelined", "all"),
                            help="which wire protocols to measure")
    dist_bench.add_argument("--block-width", type=int, default=8,
                            help="block width for the *-block socket rows")
    dist_bench.add_argument("--socket-repeats", type=int, default=3,
                            help="repeats per socket cell (best kept)")
    dist_bench.add_argument("--smoke", action="store_true",
                            help="tiny CI preset (n=600, m=3, 40 queries)")
    dist_bench.add_argument("--out", default=None, metavar="FILE",
                            help="report path "
                                 "(default: reports/distributed_speedup.json)")

    cluster = sub.add_parser(
        "cluster",
        help="multi-tenant owner daemons: serve lists from a snapshot, "
             "read owner metrics, benchmark per-owner frame coalescing",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)
    cl_serve = cluster_sub.add_parser(
        "serve",
        help="spawn owner daemons from a .bpsn snapshot and publish a "
             "spec file other processes connect with (see serve-workload "
             "--cluster-spec)",
    )
    cl_serve.add_argument("--snapshot", required=True, metavar="FILE",
                          help="epoch-stamped .bpsn snapshot; each owner "
                               "process warm-starts its own lists from it")
    cl_serve.add_argument("--owners", type=int, default=0,
                          help="owner processes (0 = one per list)")
    cl_serve.add_argument("--placement", default="contiguous",
                          choices=("contiguous", "striped"),
                          help="list-to-owner assignment strategy")
    cl_serve.add_argument("--columnar", default="auto",
                          choices=("auto", "entry", "columnar"),
                          help="owner serving path (auto = vectorized when "
                               "the lists support it)")
    cl_serve.add_argument("--include-position", action="store_true",
                          help="ship positions in lookup responses "
                               "(BPA-family clients)")
    cl_serve.add_argument("--latency-sample-k", type=int, default=64,
                          help="per-owner latency reservoir size")
    cl_serve.add_argument("--spec-out", default=None, metavar="FILE",
                          help="atomically write the cluster spec JSON "
                               "(ports, placement) to FILE once the owners "
                               "are up")
    cl_serve.add_argument("--serve-for", type=float, default=None,
                          metavar="SECONDS",
                          help="exit after SECONDS (default: serve until "
                               "interrupted)")
    cl_stats = cluster_sub.add_parser(
        "stats",
        help="read every owner's metrics endpoint (op counts, latency "
             "quantiles) from a running cluster",
    )
    cl_stats.add_argument("--spec", required=True, metavar="FILE",
                          help="spec file written by 'cluster serve "
                               "--spec-out'")
    cl_stats.add_argument("--suggest-placement", action="store_true",
                          help="fold the owners' per-list latency mass "
                               "through the LPT rebalancer and print the "
                               "suggested owner/list layout when it beats "
                               "the current imbalance")
    cl_bench = cluster_sub.add_parser(
        "bench",
        help="measure per-owner frame coalescing and the columnar serving "
             "path (writes reports/cluster_speedup.json)",
    )
    cl_bench.add_argument("--n", type=int, default=2_000)
    cl_bench.add_argument("--m", type=int, default=4)
    cl_bench.add_argument("--k", type=int, default=10)
    cl_bench.add_argument("--generator", default="uniform",
                          choices=("uniform", "gaussian", "correlated",
                                   "zipf"))
    cl_bench.add_argument("--seed", type=int, default=42)
    cl_bench.add_argument("--repeats", type=int, default=3,
                          help="repeats per socket cell (best kept)")
    cl_bench.add_argument("--block-width", type=int, default=8,
                          help="block width for the *-block rows")
    cl_bench.add_argument("--micro-n", type=int, default=20_000,
                          help="list length for the columnar sorted_block "
                               "microbenchmark")
    cl_bench.add_argument("--smoke", action="store_true",
                          help="tiny CI preset (n=400, 2 repeats, "
                               "micro-n=5000)")
    cl_bench.add_argument("--out", default=None, metavar="FILE",
                          help="report path "
                               "(default: reports/cluster_speedup.json)")

    return parser


def _cmd_query(args: argparse.Namespace) -> int:
    params = {"alpha": args.alpha} if args.generator == "correlated" else {}
    generator = make_generator(args.generator, **params)
    database = generator.generate(args.n, args.m, seed=args.seed)
    model = CostModel.for_database_size(args.n)
    print(f"database: {args.generator} n={args.n} m={args.m} k={args.k} seed={args.seed}")
    print(f"{'algorithm':>10} {'stop':>8} {'sorted':>9} {'random':>9} "
          f"{'direct':>9} {'cost':>14} {'time_ms':>9}")
    for name in args.algorithms:
        if name not in known_algorithms():
            print(f"unknown algorithm {name!r}; known: {known_algorithms()}",
                  file=sys.stderr)
            return 2
        algorithm = get_algorithm(name)
        started = time.perf_counter()
        result = algorithm.run(database, args.k)
        elapsed = (time.perf_counter() - started) * 1e3
        tally = result.tally
        print(f"{name:>10} {result.stop_position:>8} {tally.sorted:>9} "
              f"{tally.random:>9} {tally.direct:>9} "
              f"{model.execution_cost(tally):>14,.0f} {elapsed:>9.1f}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    scale = resolve_scale(args.scale)
    names = list_figures() if args.name == "all" else [args.name]
    out_dir = None
    if args.out:
        from pathlib import Path

        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        experiment = get_figure(name)
        table = experiment.run(scale, progress=lambda msg: print(f"  .. {msg}", file=sys.stderr))
        print(table.to_csv() if args.csv else table.to_text())
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(table.to_text() + "\n")
            (out_dir / f"{name}.csv").write_text(table.to_csv() + "\n")
            (out_dir / f"{name}.json").write_text(table.to_json() + "\n")
        if experiment.sweep_name == "m" and not args.csv:
            factors = speedup_factors(table)
            print("   speedup vs TA (measured | paper prediction):")
            for m in table.sweep_values:
                print(
                    f"     m={int(m):>2}:  BPA {factors['bpa_measured'][m]:5.2f} | "
                    f"{factors['bpa_paper'][m]:5.2f}    "
                    f"BPA2 {factors['bpa2_measured'][m]:5.2f} | "
                    f"{factors['bpa2_paper'][m]:5.2f}"
                )
        print()
    return 0


def _cmd_paper_examples(_args: argparse.Namespace) -> int:
    print("Figure 1 database, top-3, sum scoring (paper Examples 1-3):")
    database = figure1_database()
    for name in ("fa", "ta", "bpa", "bpa2"):
        result = get_algorithm(name).run(database, 3)
        answers = ", ".join(
            f"{database.label(e.item)}={e.score:g}" for e in result.items
        )
        print(f"  {name:>5}: stops at position {result.stop_position}, "
              f"accesses={result.tally.total} ({result.tally}) -> {answers}")
    print("\nFigure 2 database, top-3 (paper Section 5.1 example):")
    database = figure2_database()
    for name in ("bpa", "bpa2"):
        result = get_algorithm(name).run(database, 3)
        print(f"  {name:>5}: stops at position {result.stop_position}, "
              f"total accesses={result.tally.total}")
    print("\nExpected from the paper: FA stops at 8, TA at 6, BPA at 3;"
          " on Figure 2, BPA does 63 accesses vs BPA2's 36.")
    return 0


def _cmd_adversarial(args: argparse.Namespace) -> int:
    database, info = bpa_favorable_database(args.m, args.u)
    k = min(args.k, info.max_k)
    ta = get_algorithm("ta").run(database, k)
    bpa = get_algorithm("bpa").run(database, k)
    print(f"Lemma 3 instance (m={args.m}, u={args.u}, n={info.n}):")
    print(f"  TA  stops at {ta.stop_position} ({ta.tally.total} accesses)")
    print(f"  BPA stops at {bpa.stop_position} ({bpa.tally.total} accesses)")
    print(f"  ratio {ta.stop_position / bpa.stop_position:.2f} (m-1 = {args.m - 1})")
    database, info = bpa2_favorable_database(args.m, args.u)
    bpa = get_algorithm("bpa").run(database, k)
    bpa2 = get_algorithm("bpa2").run(database, k)
    print(f"Theorem 8 instance (m={args.m}, u={args.u}, n={info.n}):")
    print(f"  BPA  : {bpa.tally.total} accesses")
    print(f"  BPA2 : {bpa2.tally.total} accesses")
    print(f"  ratio {bpa.tally.total / bpa2.tally.total:.2f} "
          f"(prediction {info.j / (args.u + 1):.2f}, m-1 = {args.m - 1})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis import trace_bpa, trace_ta

    if args.figure1:
        database = figure1_database()
    else:
        database = make_generator("uniform").generate(
            args.n, args.m, seed=args.seed
        )
    print(f"TA trace (n={database.n}, m={database.m}, k={args.k}):")
    for round_trace in trace_ta(database, args.k):
        marker = "  <-- stops" if round_trace.stopped else ""
        top = ", ".join(f"{s:g}" for s in round_trace.top_scores)
        print(f"  pos {round_trace.position:>3}: delta={round_trace.threshold:<10g} "
              f"Y=[{top}]{marker}")
    print(f"\nBPA trace:")
    for round_trace in trace_bpa(database, args.k):
        marker = "  <-- stops" if round_trace.stopped else ""
        top = ", ".join(f"{s:g}" for s in round_trace.top_scores)
        print(f"  pos {round_trace.position:>3}: lambda={round_trace.threshold:<10g} "
              f"bp={list(round_trace.best_positions)} Y=[{top}]{marker}")
    return 0


def _cmd_distributed(args: argparse.Namespace) -> int:
    from repro.distributed import (
        DistributedBPA,
        DistributedBPA2,
        DistributedTA,
        DistributedTPUT,
    )

    params = {"alpha": args.alpha} if args.generator == "correlated" else {}
    generator = make_generator(args.generator, **params)
    database = generator.generate(args.n, args.m, seed=args.seed)
    options = dict(
        transport=args.transport,
        protocol=args.protocol,
        block_width=args.block_width,
    )
    default_wire = (
        args.transport == "simulated"
        and args.protocol == "entry"
        and args.block_width == 1
    )
    print(f"database: {args.generator} n={args.n} m={args.m} k={args.k} "
          f"transport={args.transport} protocol={args.protocol}"
          + (f" block_width={args.block_width}" if args.block_width > 1 else ""))
    print(f"{'driver':>10} {'messages':>10} {'bytes':>12} {'accesses':>10} "
          f"{'stop':>7} {'ms':>8}" + ("  verified" if args.verify else ""))
    failures = 0
    drivers = [DistributedTA(**options), DistributedBPA(**options),
               DistributedBPA2(**options)]
    if default_wire:
        # TPUT is a bulk-phase baseline outside the round-plan engine;
        # it only speaks the original simulated per-entry wire.
        drivers.append(DistributedTPUT())
    for driver in drivers:
        started = time.perf_counter()
        result = driver.run(database, args.k)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        net = result.extras.get("network", {})
        verified = ""
        if args.verify and driver.name != "dist-tput":
            base = driver.name.split("-", 1)[1]
            if args.block_width > 1:
                reference = get_algorithm(
                    f"{base}-block", width=args.block_width
                ).run(database, args.k)
            else:
                reference = get_algorithm(base).run(database, args.k)
            ok = (result.items == reference.items
                  and result.tally == reference.tally)
            failures += not ok
            verified = "  OK" if ok else "  MISMATCH"
        print(f"{driver.name:>10} {net.get('messages', 0):>10,} "
              f"{net.get('bytes', 0):>12,} {result.tally.total:>10,} "
              f"{result.stop_position:>7} {elapsed_ms:>8.1f}{verified}")
    if failures:
        print(f"ERROR: {failures} driver(s) diverge from the reference — "
              "this is a bug", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench.batch import compare_backends

    if args.algorithm not in known_algorithms():
        print(f"unknown algorithm {args.algorithm!r}; known: {known_algorithms()}",
              file=sys.stderr)
        return 2
    if not 1 <= args.k <= args.n:
        print(f"--k must be in 1..{args.n} (got {args.k})", file=sys.stderr)
        return 2
    if args.queries < 1:
        print(f"--queries must be >= 1 (got {args.queries})", file=sys.stderr)
        return 2
    report = compare_backends(
        n=args.n,
        m=args.m,
        queries=args.queries,
        k=args.k,
        algorithm=args.algorithm,
        generator=args.generator,
        seed=args.seed,
        repeats=args.repeats,
    )
    python_side = report["python_backend"]
    columnar_side = report["columnar_backend"]
    print(f"batch: {args.queries} x {args.algorithm} queries, "
          f"{args.generator} n={args.n:,} m={args.m}, k cycling 1..{args.k}")
    print(f"{'backend':>10} {'seconds':>10} {'queries/s':>12} {'kernel':>8}")
    print(f"{'python':>10} {python_side['seconds']:>10.3f} "
          f"{python_side['queries_per_second']:>12,.0f} {'-':>8}")
    print(f"{'columnar':>10} {columnar_side['seconds']:>10.3f} "
          f"{columnar_side['queries_per_second']:>12,.0f} "
          f"{columnar_side['vectorized_kernel_queries']:>8}")
    print(f"speedup: {report['speedup']:.2f}x  "
          f"(results identical: {report['results_identical']})")
    if not report["results_identical"]:
        print("ERROR: backends disagree — this is a bug", file=sys.stderr)
        return 1
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {out}")
    return 0


def _cmd_verify_snapshot(args: argparse.Namespace) -> int:
    from repro.errors import StorageError
    from repro.storage import verify_snapshot

    try:
        report = verify_snapshot(args.path, repair=args.repair)
    except StorageError as exc:
        print(f"unrecoverable: {exc}", file=sys.stderr)
        return 1
    print(f"snapshot {report.path}: epoch {report.epoch}, "
          f"m={report.m} n={report.n}, "
          f"{'deflate' if report.compressed else 'raw'} payload, "
          f"{report.checks} checks")
    for fixed in report.repaired:
        print(f"  repaired: {fixed}")
    for issue in report.issues:
        print(f"  ISSUE: {issue}")
    if report.ok:
        print("snapshot OK" + (" (after repair)" if report.repaired else ""))
        return 0
    print("snapshot FAILED verification"
          + (" (rank-section damage is not repairable)" if args.repair else
             " (try --repair to rebuild index sections)"),
          file=sys.stderr)
    return 1


def _cmd_serve_workload(args: argparse.Namespace) -> int:
    from repro.service.workload import (
        WorkloadConfig,
        run_workload,
        speedup_benchmark,
        write_report,
    )

    if args.cluster_spec is not None:
        return _cmd_hammer_cluster(args)
    if args.algorithm != "auto" and args.algorithm not in known_algorithms():
        print(f"unknown algorithm {args.algorithm!r}; known: "
              f"{known_algorithms()} or 'auto'", file=sys.stderr)
        return 2
    if args.shards == "auto":
        shards = "auto"
    else:
        try:
            shards = int(args.shards)
        except ValueError:
            print(f"--shards must be an integer or 'auto' (got {args.shards})",
                  file=sys.stderr)
            return 2
    args.shards = shards

    if args.speedup:
        if args.shards == "auto":
            print("--speedup sweeps explicit shard counts; pass --shards N",
                  file=sys.stderr)
            return 2
        report = speedup_benchmark(
            n=args.n,
            m=args.m,
            queries=args.queries,
            distinct=args.distinct,
            k_max=args.k_max,
            shards=args.shards,
            generator=args.generator,
            zipf_theta=args.zipf_theta,
            seed=args.seed,
            pool=args.pool,
        )
        out = write_report(report, args.out or "reports/service_speedup.json")
        grid = report["grid"]
        print(f"service speedup grid ({args.generator} n={args.n:,} "
              f"m={args.m}, {args.queries} queries, cpu_count="
              f"{report['cpu_count']}):")
        print(f"{'configuration':>24} {'cache off':>12} {'cold cache':>12} "
              f"{'warm cache':>12}   (queries/s)")
        for label, cell in grid.items():
            print(f"{label:>24} "
                  f"{cell['cache_off']['queries_per_second']:>12,.0f} "
                  f"{cell['cache_cold']['queries_per_second']:>12,.0f} "
                  f"{cell['cache_warm']['queries_per_second']:>12,.0f}")
        for name, value in report["speedups"].items():
            print(f"  {name}: {value:.2f}x")
        print(f"  cache hit rate (zipf replay): "
              f"{report['cache_hit_rate_zipf_replay']:.1%}")
        print(f"  results identical to cache-off: "
              f"{report['results_identical_to_cache_off']}")
        mutation = report["mutation_workload"]
        delta_rate, legacy_rate = mutation["reuse_rate_delta_vs_whole_epoch"]
        verified = (
            mutation["delta_cache"]["verified_identical"]
            and mutation["whole_epoch_cache"]["verified_identical"]
        )
        print(f"  mutation-heavy replay reuse (delta vs whole-epoch): "
              f"{delta_rate:.1%} vs {legacy_rate:.1%} "
              f"(oracle-verified: {verified})")
        refresh = report["snapshot_refresh"]
        print(f"  snapshot refresh (patched vs cold rebuild, "
              f"{refresh['config']['epochs']} epochs): "
              f"{refresh['speedup_patched_vs_rebuild']:.2f}x "
              f"(snapshots identical: {refresh['snapshots_identical']})")
        print(f"report written to {out}")
        ok = (
            report["results_identical_to_cache_off"]
            and verified
            and refresh["snapshots_identical"]
        )
        return 0 if ok else 1

    if args.adaptive_speedup:
        return _cmd_adaptive_speedup(args)

    settings = dict(
        generator=args.generator,
        alpha=args.alpha,
        n=args.n,
        m=args.m,
        seed=args.seed,
        queries=args.queries,
        distinct=args.distinct,
        k_max=args.k_max,
        zipf_theta=args.zipf_theta,
        algorithm=args.algorithm,
        shards=args.shards,
        pool=args.pool,
        cache_size=0 if args.no_cache else args.cache_size,
        key_skew=args.key_skew,
        adversarial_ratio=args.adversarial_ratio,
        phase_shift=args.phase_shift,
        adaptive=args.adaptive,
    )
    if args.smoke:
        settings.update(
            n=min(args.n, 2_000),
            queries=min(args.queries, 60),
            distinct=min(args.distinct, 10),
            k_max=min(args.k_max, 10),
            shards="auto" if args.shards == "auto" else min(args.shards, 2),
            pool="serial",
        )
        default_out = (
            "reports/service_smoke_async.json"
            if args.async_mode
            else "reports/service_smoke.json"
        )
    else:
        default_out = "reports/service_workload.json"
    if args.watch_port is not None and args.mutation_rate <= 0:
        print("--watch-port needs --mutation-rate: standing queries over "
              "static data never produce a delta", file=sys.stderr)
        return 2
    if args.mutation_rate > 0 or args.reverse_rate > 0:
        if args.async_mode:
            print("--mutation-rate/--reverse-rate replay serially (the "
                  "per-query oracle needs a deterministic interleaving); "
                  "drop --async-mode",
                  file=sys.stderr)
            return 2
        default_out = (
            "reports/service_mutation_smoke.json"
            if args.smoke
            else "reports/service_mutation_workload.json"
        )
    config = WorkloadConfig(**settings)

    if args.watch_port is not None:
        print(f"watch server on 127.0.0.1:{args.watch_port} — tail with "
              f"'repro-topk watch --port {args.watch_port}'")
    report = run_workload(
        config,
        mode="async" if args.async_mode else "serial",
        concurrency=args.concurrency,
        mutation_rate=args.mutation_rate,
        verify=args.verify,
        snapshot_in=args.snapshot_in,
        snapshot_out=args.snapshot_out,
        watch_port=args.watch_port,
        watch_wait=args.watch_wait,
        reverse_rate=args.reverse_rate,
        reverse_users=args.reverse_users,
        reverse_k=args.reverse_k,
    )
    out = write_report(report, args.out or default_out)
    summary = report["service"]

    if "snapshot_restored_epoch" in report:
        print(f"warm start: restored snapshot {args.snapshot_in} "
              f"(epoch {report['snapshot_restored_epoch']})")

    if args.mutation_rate > 0 or args.reverse_rate > 0:
        outcomes = summary["cache_outcomes"]
        mutations = summary["mutations"]
        print(f"mutation replay: {summary['queries']} queries over "
              f"{config.generator} n={config.n:,} m={config.m}, "
              f"~{args.mutation_rate:g} mutations/query "
              f"({sum(mutations.values())} applied: "
              f"{mutations['update_score']} updates, "
              f"{mutations['insert_item']} inserts, "
              f"{mutations['remove_item']} removes)")
        print(f"cache outcomes: {outcomes['hit']} hit / "
              f"{outcomes['revalidated']} revalidated / "
              f"{outcomes['patched']} patched / {outcomes['miss']} miss "
              f"-> reuse rate {summary['reuse_rate']:.1%}")
        watching = report.get("watch")
        if watching is not None:
            print(f"standing queries: {watching['subscriptions']} live at "
                  f"shutdown; maintenance {watching['unchanged']} unchanged "
                  f"/ {watching['patched']} patched / "
                  f"{watching['recomputed']} recomputed -> "
                  f"{watching['deltas']} deltas pushed")
        reverse = summary.get("reverse")
        if reverse is not None:
            decisions = (reverse["bound_in"] + reverse["bound_out"]
                         + reverse["boundary_hits"] + reverse["fallbacks"])
            pruned = reverse["bound_in"] + reverse["bound_out"]
            upkeep = reverse["maintenance"]
            print(f"reverse top-k: {reverse['queries']} queries "
                  f"(k={reverse['k']}, {reverse['users']} users) — "
                  f"{pruned}/{decisions} user decisions bound-pruned, "
                  f"{reverse['boundary_hits']} boundary hits, "
                  f"{reverse['fallbacks']} fallbacks")
            print(f"  boundary maintenance: {upkeep['unchanged']} unchanged "
                  f"/ {upkeep['patched']} patched / {upkeep['dropped']} "
                  f"dropped / {upkeep['flushes']} flushes")
        if args.verify:
            verdict = summary["verified_identical"]
            print(f"oracle verification: "
                  f"{'all answers identical' if verdict else 'MISMATCH'} "
                  f"({summary['verify_mismatches']} mismatches)")
            if not verdict:
                print("ERROR: a served answer diverged from the brute-force "
                      "ranking of the current data", file=sys.stderr)
                return 1
            if reverse is not None and not reverse["verified_identical"]:
                print("ERROR: a reverse top-k answer diverged from the "
                      "per-user brute-force oracle", file=sys.stderr)
                return 1
        saved = report.get("snapshot_saved")
        if saved is not None:
            print(f"snapshot saved to {saved['path']} "
                  f"(epoch {saved['epoch']})")
        print(f"report written to {out}")
        return 0
    print(f"workload: {summary['queries']} queries "
          f"({config.distinct} distinct, zipf theta={config.zipf_theta}) over "
          f"{config.generator} n={config.n:,} m={config.m}")
    mode_note = (
        f" mode=async(x{args.concurrency}, {summary.get('coalesced', 0)} "
        "coalesced)" if args.async_mode else ""
    )
    print(f"service:  shards={summary['shards']} "
          f"pool={report['pool_resolved']} "
          f"cache={'off' if config.cache_size == 0 else config.cache_size}"
          f"{mode_note}")
    print(f"{'':>10}{'queries/s':>12} {'hit rate':>9} {'p50 ms':>8} "
          f"{'p95 ms':>8}")
    print(f"{'service':>10}{summary['queries_per_second']:>12,.0f} "
          f"{summary['cache_hit_rate']:>9.1%} "
          f"{summary['latency_ms']['p50']:>8.2f} "
          f"{summary['latency_ms']['p95']:>8.2f}")
    baseline = report.get("baseline_unsharded_no_cache")
    if baseline is not None:
        print(f"{'baseline':>10}{baseline['queries_per_second']:>12,.0f} "
              f"{'-':>9} {baseline['latency_ms']['p50']:>8.2f} "
              f"{baseline['latency_ms']['p95']:>8.2f}")
        print(f"speedup vs unsharded/no-cache baseline: "
              f"{report['speedup_vs_baseline']:.2f}x  "
              f"(results identical: {report['results_identical_to_baseline']})")
        if not report["results_identical_to_baseline"]:
            print("ERROR: service answers diverge from the baseline — "
                  "this is a bug", file=sys.stderr)
            return 1
    adaptive = summary.get("adaptive")
    if adaptive is not None:
        widths = ", ".join(
            f"w{width}:{count}"
            for width, count in sorted(
                adaptive["width_histogram"].items(),
                key=lambda pair: int(pair[0]),
            )
        ) or "untuned"
        print(f"adaptive: {adaptive['drift_epochs']} drift epochs, "
              f"{adaptive['replans']} re-plans over {adaptive['arms']} arms "
              f"(plan generation {adaptive['plan_generation']})")
        print(f"  block widths served: {widths} "
              f"({adaptive['width_adjustments']} adjustments)")
    if args.verify:
        verdict = summary.get("verified_identical")
        print(f"oracle verification: "
              f"{'all answers identical' if verdict else 'MISMATCH'} "
              f"({summary.get('verify_mismatches', 0)} mismatches)")
        if not verdict:
            print("ERROR: a served answer diverged from the brute-force "
                  "ranking", file=sys.stderr)
            return 1
    saved = report.get("snapshot_saved")
    if saved is not None:
        print(f"snapshot saved to {saved['path']} (epoch {saved['epoch']})")
    print(f"report written to {out}")
    return 0


def _cmd_adaptive_speedup(args: argparse.Namespace) -> int:
    """``serve-workload --adaptive-speedup``: the closed-loop grid.

    Ignores the generic workload sizing flags in favor of the
    benchmark's tuned defaults (correlated data makes the stop depth
    track k, so the static widths genuinely disagree across phases);
    only the phase knobs, the seed, and --smoke are honored.  The exit
    code gates on *correctness* (every cell oracle-verified and all
    cells answer-identical); the performance verdicts are printed and
    land in the report for the reader.
    """
    from repro.service.workload import adaptive_contrast, write_report

    settings: dict = {"seed": args.seed}
    if args.phase_shift:
        settings["phase_shift"] = args.phase_shift
    if args.adversarial_ratio:
        settings["adversarial_ratio"] = args.adversarial_ratio
    if args.key_skew is not None:
        settings["key_skew"] = args.key_skew
    if args.smoke:
        settings.update(n=1_500, queries=120, distinct=8)
    report = adaptive_contrast(**settings)
    out = write_report(report, args.out or "reports/adaptive_speedup.json")
    config = report["config"]
    print(f"adaptive planning grid ({config['generator']} "
          f"n={config['n']:,} m={config['m']}, {config['queries']} queries, "
          f"{config['phase_shift']} phase shifts, "
          f"{config['adversarial_ratio']:.0%} adversarial):")
    print(f"{'cell':>12} {'seconds':>9} {'queries/s':>10} {'messages':>10} "
          f"{'net cost':>12}")
    for grid_label in ("phase_shifting", "stationary"):
        grid = report[grid_label]
        print(f"  [{grid_label}]")
        for label, cell in grid["cells"].items():
            print(f"{label:>12} {cell['seconds']:>9.3f} "
                  f"{cell['queries_per_second']:>10,.0f} "
                  f"{cell['messages']:>10,} {cell['network_cost']:>12,}")
        print(f"    adaptive vs best static: "
              f"{grid['adaptive_wall_vs_best_static']:.3f}x wall, "
              f"{grid['adaptive_network_cost_vs_best_static']:.3f}x "
              f"network cost")
    drift = report["phase_shifting"]["cells"]["adaptive"]["adaptive"]
    print(f"drift epochs under phase shifts: {drift['drift_epochs']} "
          f"({drift['replans']} re-plans)")
    summary = report["summary"]
    print(f"  adaptive beats best static (wall or network cost): "
          f"{summary['adaptive_beats_best_static']}")
    print(f"  stationary within {config['stationary_tolerance']:.2f}x "
          f"of best static: "
          f"{summary['adaptive_ties_stationary_within_tolerance']}")
    identical = (
        report["phase_shifting"]["answers_identical_across_cells"]
        and report["stationary"]["answers_identical_across_cells"]
    )
    print(f"  all cells oracle-verified: {summary['all_verified']} "
          f"(answers identical across cells: {identical})")
    print(f"report written to {out}")
    return 0 if (summary["all_verified"] and identical) else 1


def _cmd_watch(args: argparse.Namespace) -> int:
    if args.speedup:
        from repro.service.workload import write_report
        from repro.watch.bench import watch_speedup

        report = watch_speedup(
            generator=args.generator,
            n=args.n,
            m=args.m,
            seed=args.seed,
            subscribers=args.subscribers,
            mutations=args.mutations,
            k=args.k,
            algorithm=args.algorithm,
            scoring=args.scoring,
            verify=not args.no_verify,
        )
        out = write_report(report, args.out or "reports/watch_speedup.json")
        watch_side, naive = report["watch"], report["naive"]
        speedup = report["speedup"]
        print(f"watch speedup ({args.generator} n={args.n:,} m={args.m}, "
              f"{args.subscribers} subscribers x {args.mutations} mutations, "
              f"k={args.k}):")
        print(f"{'mode':>8} {'messages':>10} {'bytes':>12} {'seconds':>9}")
        print(f"{'watch':>8} {watch_side['messages']:>10,} "
              f"{watch_side['bytes']:>12,} {watch_side['seconds']:>9.3f}")
        print(f"{'naive':>8} {naive['messages']:>10,} "
              f"{naive['bytes']:>12,} {naive['seconds']:>9.3f}")
        print(f"push saves {speedup['messages']:.1f}x messages, "
              f"{speedup['bytes']:.1f}x bytes, "
              f"{speedup['wallclock']:.2f}x wall-clock")
        outcomes = watch_side["outcomes"]
        print(f"maintenance outcomes: {outcomes['unchanged']} unchanged / "
              f"{outcomes['patched']} patched / "
              f"{outcomes['recomputed']} recomputed")
        if not args.no_verify:
            verdict = report["verified"]
            print(f"oracle verification: "
                  f"{'every mirror identical' if verdict else 'MISMATCH'}")
            if not verdict:
                print("ERROR: a client mirror diverged from the brute-force "
                      "ranking of the current data", file=sys.stderr)
                return 1
        print(f"report written to {out}")
        return 0

    if args.port is None:
        print("watch needs --port (or --speedup); start a server with "
              "'repro-topk serve-workload --mutation-rate R --watch-port P'",
              file=sys.stderr)
        return 2
    from repro.watch.client import WatchClient

    try:
        client = WatchClient(args.port, host=args.host)
    except OSError as exc:
        print(f"cannot reach watch server at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    with client:
        handle = client.watch(
            algorithm=args.algorithm, k=args.k, scoring=args.scoring
        )
        print(f"subscription #{handle.id} (k={args.k}, {args.scoring}, "
              f"epoch {handle.epoch}):")
        for rank, entry in enumerate(handle.entries, start=1):
            print(f"  {rank:>3}. item {entry.item}  score {entry.score:.6f}")
        seen = 0
        try:
            while args.max_deltas is None or seen < args.max_deltas:
                for delta in client.poll(timeout=args.poll_timeout):
                    if not handle.apply(delta):
                        continue
                    seen += 1
                    exits = ",".join(str(item) for item in delta.exits)
                    moves = ", ".join(
                        f"#{u.rank + 1} item {u.item} ({u.score:.6f})"
                        for u in delta.upserts
                    )
                    print(f"delta seq={delta.seq} epoch={delta.epoch} "
                          f"[{delta.cause}]"
                          + (f" out: {exits}" if exits else "")
                          + (f" in/move: {moves}" if moves else ""))
                    if args.max_deltas is not None and seen >= args.max_deltas:
                        break
        except ConnectionError:
            print("server closed the stream")
        except KeyboardInterrupt:
            pass
    print(f"tailed {seen} deltas; final top-{args.k}: "
          f"{list(handle.item_ids)}")
    return 0


def _cmd_reverse(args: argparse.Namespace) -> int:
    if args.speedup:
        from repro.reverse.bench import reverse_speedup_benchmark
        from repro.service.workload import write_report

        report = reverse_speedup_benchmark(
            generator=args.generator,
            n=args.n,
            m=args.m,
            seed=args.seed,
            users=args.users,
            queries=args.queries,
            mutations=args.mutations,
            k=args.k,
            verify=not args.no_verify,
        )
        out = write_report(report, args.out or "reports/reverse_speedup.json")
        pruned, naive = report["pruned"], report["naive"]
        speedup = report["speedup"]
        print(f"reverse top-k speedup ({args.generator} n={args.n:,} "
              f"m={args.m}, {args.users} users, {args.queries} queries + "
              f"{args.mutations} mutating, k={args.k}):")
        print(f"{'mode':>8} {'static s':>10} {'mutating s':>11}")
        print(f"{'pruned':>8} {pruned['seconds_static']:>10.3f} "
              f"{pruned['seconds_mutating']:>11.3f}")
        print(f"{'naive':>8} {naive['seconds_static']:>10.3f} "
              f"{naive['seconds_mutating']:>11.3f}")
        print(f"speedup: {speedup['static']:.1f}x static, "
              f"{speedup['mutating']:.1f}x mutating, "
              f"{speedup['overall']:.1f}x overall "
              f"({pruned['pruned_fraction']:.0%} of user decisions "
              f"bound-pruned)")
        upkeep = pruned["maintenance"]
        print(f"maintenance: {upkeep['unchanged']} unchanged / "
              f"{upkeep['patched']} patched / {upkeep['dropped']} dropped")
        if report["verified"] is not None:
            print(f"oracle verification: "
                  f"{'all answers identical' if report['verified'] else 'MISMATCH'} "
                  f"({report['mismatches']} mismatches)")
        print(f"report written to {out}")
        return 0 if report["verified"] in (True, None) else 1

    import numpy as np

    from repro.datagen import make_generator
    from repro.reverse import brute_force_reverse_topk
    from repro.service.service import QueryService
    from repro.service.workload import dynamic_from

    static = make_generator(args.generator).generate(
        args.n, args.m, seed=args.seed
    )
    source = dynamic_from(static)
    rng = np.random.default_rng(args.seed + 1)
    mismatches = 0
    with QueryService(source, shards=1, pool="serial") as service:
        registry = service.reverse_registry
        registry.seed_users(args.users, args.m, seed=args.seed + 2)
        ids = sorted(source.item_ids)
        if args.item is not None:
            if args.item not in source.item_ids:
                print(f"item {args.item} is not in the database "
                      f"(ids 0..{max(ids)})", file=sys.stderr)
                return 2
            items = [args.item]
        else:
            items = [
                ids[int(rng.integers(len(ids)))]
                for _ in range(args.queries)
            ]
        print(f"reverse top-{args.k} over {args.generator} "
              f"n={args.n:,} m={args.m}, {args.users} registered users:")
        for item in items:
            result = service.submit_reverse(item, args.k)
            stats = result.stats
            verdict = ""
            if not args.no_verify:
                expected = brute_force_reverse_topk(
                    source, registry, item, args.k
                )
                if result.users != expected:
                    mismatches += 1
                    verdict = "  MISMATCH vs oracle"
            print(f"  item {item}: {len(result)} users "
                  f"(bounds {stats.bound_in}+{stats.bound_out}, "
                  f"cached {stats.boundary_hits}, "
                  f"fallback {stats.fallbacks}, "
                  f"{stats.seconds * 1e3:.2f} ms){verdict}")
            if args.item is not None and result.users:
                for user in result.users:
                    weights = registry.get(user).weights
                    rendered = ", ".join(f"{w:.3f}" for w in weights)
                    print(f"    {user}  weights [{rendered}]")
        counters = service.reverse_engine.counters
        decided = counters.bound_in + counters.bound_out
        total = decided + counters.boundary_hits + counters.fallbacks
        print(f"decisions: {decided}/{total} bound-pruned, "
              f"{counters.boundary_hits} boundary hits, "
              f"{counters.fallbacks} fallbacks")
    if not args.no_verify:
        print(f"oracle verification: "
              f"{'all answers identical' if mismatches == 0 else 'MISMATCH'} "
              f"({mismatches} mismatches)")
        if mismatches:
            return 1
    return 0


def _cmd_hammer_cluster(args: argparse.Namespace) -> int:
    """``serve-workload --cluster-spec``: hammer a cluster we did not spawn."""
    import json

    from repro.distributed.cluster_bench import hammer_cluster
    from repro.service.workload import write_report

    with open(args.cluster_spec, encoding="utf-8") as handle:
        spec = json.load(handle)
    ks = tuple(sorted({max(1, args.k_max // 4), max(1, args.k_max // 2),
                       max(1, args.k_max)}))
    report = hammer_cluster(spec, ks=ks, verify=args.verify)
    print(f"cluster workload: {report['queries']} queries over "
          f"{report['owners']} owners ({report['protocol']} protocol)")
    print(f"{'algorithm':>10} {'k':>4} {'messages':>9} {'bytes':>10} "
          f"{'ms':>8} {'verified':>9}")
    for row in report["rows"]:
        verified = str(row.get("verified", "-"))
        print(f"{row['algorithm']:>10} {row['k']:>4} {row['messages']:>9,} "
              f"{row['bytes']:>10,} {row['seconds'] * 1e3:>8.1f} "
              f"{verified:>9}")
    out = write_report(report, args.out or "reports/cluster_workload.json")
    print(f"report written to {out}")
    if args.verify and report["failures"]:
        print(f"{report['failures']} queries diverged from the reference",
              file=sys.stderr)
        return 1
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    handlers = {
        "serve": _cmd_cluster_serve,
        "stats": _cmd_cluster_stats,
        "bench": _cmd_cluster_bench,
    }
    return handlers[args.cluster_command](args)


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    import json

    from repro.distributed.socket_transport import SocketCluster
    from repro.storage import atomic_writer

    cluster = SocketCluster.from_snapshot(
        args.snapshot,
        owners=args.owners or None,
        placement=args.placement,
        columnar=args.columnar,
        include_position=args.include_position,
        latency_sample_k=args.latency_sample_k,
    )
    try:
        spec = {
            "ports": cluster.ports,
            "placement": cluster.placement.to_dict(),
            "m": cluster.m,
            "n": cluster.n,
            "epoch": cluster.epoch,
            "include_position": cluster.include_position,
            "snapshot": args.snapshot,
        }
        body = json.dumps(spec, indent=2) + "\n"
        if args.spec_out:
            # Atomic so a poll-for-the-file client never reads a torn spec.
            with atomic_writer(args.spec_out) as handle:
                handle.write(body.encode("utf-8"))
        print(f"cluster up: {cluster.placement.owners} owners hosting "
              f"{cluster.m} lists (n={cluster.n:,}, epoch {cluster.epoch}, "
              f"{cluster.placement.strategy} placement)")
        for owner, (group, port) in enumerate(
            zip(cluster.placement.groups, cluster.ports)
        ):
            print(f"  owner/{owner}: lists {list(group)} on port {port}")
        if args.spec_out:
            print(f"spec written to {args.spec_out}")
        else:
            print(body, end="")
        try:
            if args.serve_for is not None:
                time.sleep(args.serve_for)
            else:
                while True:
                    time.sleep(1.0)
        except KeyboardInterrupt:
            pass
    finally:
        cluster.close()
    print("cluster shut down")
    return 0


def _cmd_cluster_stats(args: argparse.Namespace) -> int:
    import json

    from repro.distributed.socket_transport import connect_ports

    with open(args.spec, encoding="utf-8") as handle:
        spec = json.load(handle)
    documents = []
    with connect_ports(spec["ports"]) as fabric:
        for owner in range(len(spec["ports"])):
            metrics = fabric.request(f"owner/{owner}", "state",
                                     {"metrics": True})
            documents.append(metrics)
            # A fresh daemon reports only zero counts (no quantile
            # keys, possibly no latency section at all over older
            # protocols) — render "no data", don't crash.
            latency = metrics.get("latency") or {}
            ops = ", ".join(f"{kind}={count:,}" for kind, count
                            in sorted(metrics["ops"].items())) or "none"
            print(f"owner/{owner}: lists {metrics['lists']}")
            print(f"  ops: {ops}")
            if latency.get("count") and "p50_us" in latency:
                print(f"  latency ({latency['count']:,} ops, "
                      f"{latency['samples']} sampled): "
                      f"p50 {latency['p50_us']}us  "
                      f"p90 {latency['p90_us']}us  "
                      f"p99 {latency['p99_us']}us  "
                      f"max {latency['max_us']}us")
            else:
                print("  latency: no ops served yet")
    if args.suggest_placement:
        from repro.distributed.placement import (
            ClusterPlacement,
            list_masses,
            placement_balance,
            rebalance_placement,
        )

        # Decide the edge cases from the *observed* mass before ever
        # invoking the rebalancer: a fresh cluster may report no
        # per-list statistics at all (rebalance_placement would raise),
        # and a single-owner cluster has no move worth proposing.
        current = ClusterPlacement.from_dict(spec["placement"])
        masses = list_masses(documents)
        before = placement_balance(current, masses)
        print(f"placement: {current.strategy}, imbalance "
              f"{before['imbalance']:.3f} (max/mean observed latency "
              f"mass; 1.0 is perfect)")
        if before["total_mass"] <= 0:
            print("  no observed load yet — serve some queries before "
                  "rebalancing")
        elif current.owners <= 1:
            print("  single owner hosts every list — nothing to "
                  "rebalance")
        else:
            proposal = rebalance_placement(documents)
            after = placement_balance(proposal, masses)
            if after["imbalance"] < before["imbalance"]:
                print(f"  suggested rebalance -> imbalance "
                      f"{after['imbalance']:.3f}:")
                for owner, group in enumerate(proposal.groups):
                    print(f"    owner/{owner}: lists {list(group)} "
                          f"(mass {after['per_owner_mass'][owner]:.6f})")
            else:
                print("  current placement is already balanced — "
                      "no move suggested")
    return 0


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    from repro.distributed.cluster_bench import cluster_speedup_benchmark
    from repro.service.workload import write_report

    settings = dict(
        n=args.n,
        m=args.m,
        k=args.k,
        generator=args.generator,
        seed=args.seed,
        repeats=args.repeats,
        block_width=args.block_width,
        micro_n=args.micro_n,
    )
    if args.smoke:
        settings.update(n=min(args.n, 400), repeats=min(args.repeats, 2),
                        micro_n=min(args.micro_n, 5_000))
    report = cluster_speedup_benchmark(**settings)
    out = write_report(report, args.out or "reports/cluster_speedup.json")
    config = report["socket"]["config"]
    print(f"cluster coalescing ({config['generator']} n={config['n']:,} "
          f"m={config['m']}, best of {config['repeats']}, socket "
          f"transport):")
    print(f"{'driver':>14} {'frames m-own':>13} {'frames 2-own':>13} "
          f"{'reduction':>10} {'wall speedup':>13}")
    m_label = str(config["m"])
    for label, row in report["socket"]["drivers"].items():
        base = row["owners"].get(m_label, {}).get("batch")
        two = row["owners"].get("2", {}).get("batch")
        if not base or not two:
            continue
        reduction = row.get("frames_reduction_batch_2_owners", 0.0)
        speedup = row.get("wall_speedup_batch_2_owners", 0.0)
        marker = "" if row["full_fanout_rounds"] else "  (probe waves only)"
        print(f"{label:>14} {base['messages']:>13,} {two['messages']:>13,} "
              f"{reduction:>9.2f}x {speedup:>12.2f}x{marker}")
    micro = report["columnar_sorted_block"]
    print(f"columnar sorted_block serving: {micro['speedup']:.2f}x over "
          f"per-entry (n={micro['config']['n']:,}, "
          f"block {micro['config']['block']})")
    rebalance = report["placement_rebalance"]
    print(f"placement rebalance (skewed {rebalance['config']['m']}-list "
          f"layout): imbalance {rebalance['imbalance_before']:.3f} -> "
          f"{rebalance['imbalance_after']:.3f} measured "
          f"({rebalance['imbalance_predicted']:.3f} predicted), "
          f"groups {rebalance['proposed_groups']}")
    summary = report["summary"]
    print(f"  meets 2x frame reduction at 2 owners: "
          f"{summary['meets_2x_frames']}")
    print(f"  wall-clock faster at 2 owners: {summary['wall_clock_faster']}")
    print(f"  columnar faster than per-entry: {summary['columnar_faster']}")
    print(f"  rebalance improves balance: "
          f"{summary['rebalance_improves_balance']}")
    print(f"report written to {out}")
    ok = (summary["meets_2x_frames"] and summary["wall_clock_faster"]
          and summary["columnar_faster"]
          and summary["rebalance_improves_balance"])
    return 0 if ok else 1


def _cmd_dist_bench(args: argparse.Namespace) -> int:
    from repro.distributed.bench import distributed_speedup_benchmark
    from repro.service.workload import write_report

    transports = (
        ("simulated", "socket") if args.transport == "all"
        else (args.transport,)
    )
    protocols = (
        ("entry", "batch", "pipelined") if args.protocol == "all"
        else (args.protocol,)
    )
    settings = dict(
        n=args.n,
        m=args.m,
        k=args.k,
        generator=args.generator,
        seed=args.seed,
        async_queries=args.queries,
        concurrency=args.concurrency,
        transports=transports,
        protocols=protocols,
        socket_repeats=args.socket_repeats,
        block_width=args.block_width,
    )
    if args.smoke:
        settings.update(n=min(args.n, 600), m=min(args.m, 3),
                        async_queries=min(args.queries, 40),
                        socket_repeats=min(args.socket_repeats, 2))
    report = distributed_speedup_benchmark(**settings)
    out = write_report(report, args.out or "reports/distributed_speedup.json")

    if "socket" in transports and not any(
        p in ("batch", "pipelined") for p in protocols
    ):
        print("note: socket rows need a batch-family protocol "
              "(--protocol batch or pipelined); skipping the socket "
              "section", file=sys.stderr)
    transport = report.get("transport")
    if transport is not None:
        print(f"wire protocols ({transport['config']['generator']} "
              f"n={transport['config']['n']:,} m={transport['config']['m']} "
              f"k={transport['config']['k']}):")
        measured = transport["protocols"]
        if "entry" in measured and "batch" in measured:
            print(f"{'driver':>8} {'accesses':>9} {'entry msgs':>11} "
                  f"{'batch msgs':>11} {'entry bytes':>12} "
                  f"{'batch bytes':>12} {'bytes saved':>12}")
            for name, cell in transport["drivers"].items():
                print(f"{name:>8} {cell['accesses']:>9,} "
                      f"{cell['entry']['messages']:>11,} "
                      f"{cell['batch']['messages']:>11,} "
                      f"{cell['entry']['bytes']:>12,} "
                      f"{cell['batch']['bytes']:>12,} "
                      f"{cell['bytes_reduction']:>11.1%}")
        else:
            print(f"{'driver':>8} {'protocol':>10} {'accesses':>9} "
                  f"{'messages':>10} {'bytes':>12}")
            for name, cell in transport["drivers"].items():
                for protocol in measured:
                    print(f"{name:>8} {protocol:>10} {cell['accesses']:>9,} "
                          f"{cell[protocol]['messages']:>10,} "
                          f"{cell[protocol]['bytes']:>12,}")
    socket_side = report.get("socket")
    if socket_side is not None:
        print(f"socket transport, wall-clock per query "
              f"(multi-process owners over TCP, best of "
              f"{socket_side['config']['repeats']}):")
        print(f"{'driver':>14} {'messages':>9} {'batch ms':>9} "
              f"{'pipelined ms':>13} {'speedup':>8} {'msgs equal':>11}")
        for name, cell in socket_side["drivers"].items():
            batch = cell.get("batch")
            pipelined = cell.get("pipelined")
            messages = (batch or pipelined or {}).get("messages", 0)
            batch_ms = (f"{batch['seconds'] * 1e3:>9.1f}"
                        if batch else f"{'-':>9}")
            pipelined_ms = (f"{pipelined['seconds'] * 1e3:>13.1f}"
                            if pipelined else f"{'-':>13}")
            if batch and pipelined:
                speedup = f"{cell['pipelined_wall_speedup']:>7.2f}x"
                equal = f"{str(cell['messages_equal']):>11}"
            else:
                speedup, equal = f"{'-':>8}", f"{'-':>11}"
            print(f"{name:>14} {messages:>9,} {batch_ms} {pipelined_ms} "
                  f"{speedup} {equal}")
    async_side = report["async_service"]
    print(f"async service replay ({async_side['config']['queries']} queries, "
          f"concurrency {async_side['config']['concurrency']}):")
    print(f"  serial {async_side['serial']['queries_per_second']:,.0f} q/s  "
          f"async {async_side['async']['queries_per_second']:,.0f} q/s  "
          f"({async_side['async_vs_serial_speedup']:.2f}x, cache stats "
          f"identical: {async_side['cache_stats_identical']})")
    print(f"report written to {out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "query": _cmd_query,
        "figure": _cmd_figure,
        "paper-examples": _cmd_paper_examples,
        "adversarial": _cmd_adversarial,
        "trace": _cmd_trace,
        "distributed": _cmd_distributed,
        "bench": _cmd_bench,
        "serve-workload": _cmd_serve_workload,
        "watch": _cmd_watch,
        "reverse": _cmd_reverse,
        "verify-snapshot": _cmd_verify_snapshot,
        "dist-bench": _cmd_dist_bench,
        "cluster": _cmd_cluster,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
