"""repro — Best Position Algorithms for Top-k Queries.

A complete, from-scratch reproduction of

    Reza Akbarinia, Esther Pacitti, Patrick Valduriez.
    "Best Position Algorithms for Top-k Queries." VLDB 2007.

Quickstart::

    from repro import UniformGenerator, BestPositionAlgorithm, SUM

    database = UniformGenerator().generate(n=10_000, m=4, seed=7)
    result = BestPositionAlgorithm().run(database, k=10, scoring=SUM)
    print(result.item_ids, result.tally, result.stop_position)

See :mod:`repro.bench` for the paper's full experimental suite and
:mod:`repro.distributed` for the message-passing simulation.
"""

from repro.algorithms import (
    FaginsAlgorithm,
    NaiveScan,
    NoRandomAccess,
    QuickCombine,
    ThresholdAlgorithm,
)
from repro.algorithms.base import get_algorithm, known_algorithms
from repro.algorithms.progressive import progressive_topk
from repro.core import (
    BestPositionAlgorithm,
    BestPositionAlgorithm2,
    BitArrayTracker,
    BPlusTreeTracker,
    NaiveTracker,
    make_tracker,
)
from repro.bench.batch import BatchRunner, QuerySpec, compare_backends
from repro.columnar import (
    ColumnarDatabase,
    ColumnarList,
    fast_bpa,
    fast_bpa2,
    fast_nra,
    fast_quick_combine,
    fast_ta,
)
from repro.exec import ExecutionBackend, LocalColumnarBackend
from repro.datagen import (
    CorrelatedGenerator,
    GaussianGenerator,
    UniformGenerator,
    ZipfGenerator,
    figure1_database,
    figure2_database,
)
from repro.dynamic import DynamicDatabase, DynamicSortedList
from repro.errors import ReproError
from repro.lists import Database, SortedList
from repro.reverse import (
    ReverseResult,
    ReverseTopkEngine,
    UserWeightRegistry,
    brute_force_reverse_topk,
)
from repro.service import (
    QueryService,
    ServicePolicy,
    ServiceResult,
    ServiceStats,
    ShardExecutor,
)
from repro.storage import open_database, save_database
from repro.scoring import (
    AVERAGE,
    MAX,
    MIN,
    SUM,
    AverageScoring,
    MaxScoring,
    MinScoring,
    ProductScoring,
    SumScoring,
    WeightedSumScoring,
)
from repro.types import AccessTally, CostModel, ScoredItem, TopKResult

__version__ = "1.0.0"

__all__ = [
    # algorithms
    "NaiveScan",
    "FaginsAlgorithm",
    "ThresholdAlgorithm",
    "NoRandomAccess",
    "QuickCombine",
    "BestPositionAlgorithm",
    "BestPositionAlgorithm2",
    "get_algorithm",
    "known_algorithms",
    "progressive_topk",
    # best-position trackers
    "NaiveTracker",
    "BitArrayTracker",
    "BPlusTreeTracker",
    "make_tracker",
    # data
    "Database",
    "SortedList",
    "ColumnarDatabase",
    "ColumnarList",
    "DynamicDatabase",
    "DynamicSortedList",
    "save_database",
    "open_database",
    "UniformGenerator",
    "GaussianGenerator",
    "CorrelatedGenerator",
    "ZipfGenerator",
    "figure1_database",
    "figure2_database",
    # vectorized kernels & batching
    "fast_ta",
    "fast_bpa",
    "fast_bpa2",
    "fast_nra",
    "fast_quick_combine",
    "BatchRunner",
    "QuerySpec",
    "compare_backends",
    # query service
    "QueryService",
    "ExecutionBackend",
    "LocalColumnarBackend",
    "ServiceResult",
    "ServiceStats",
    "ServicePolicy",
    "ShardExecutor",
    # reverse top-k
    "UserWeightRegistry",
    "ReverseTopkEngine",
    "ReverseResult",
    "brute_force_reverse_topk",
    # scoring
    "SumScoring",
    "WeightedSumScoring",
    "MinScoring",
    "MaxScoring",
    "AverageScoring",
    "ProductScoring",
    "SUM",
    "MIN",
    "MAX",
    "AVERAGE",
    # results & costs
    "TopKResult",
    "ScoredItem",
    "AccessTally",
    "CostModel",
    # errors
    "ReproError",
    "__version__",
]
