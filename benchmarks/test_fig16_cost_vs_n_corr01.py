"""Figure 16: execution cost vs n, correlated alpha=0.01, m=8."""

from benchmarks.conftest import (
    assert_bpa_never_worse_than_ta,
    run_figure,
)


def test_fig16_cost_vs_n_corr01(benchmark):
    table = run_figure(benchmark, "fig16")
    assert_bpa_never_worse_than_ta(table)
    # Paper Section 6.2.3: n matters much less on correlated data than on
    # uniform — growth stays well below proportional to n (8x here).
    series = table.series("ta")
    n_growth = table.sweep_values[-1] / table.sweep_values[0]
    assert series[-1] < series[0] * n_growth
