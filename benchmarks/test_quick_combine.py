"""Extension bench: Quick-Combine vs (memoized) TA vs BPA2 accesses.

Quick-Combine's adaptive scheduling pays off when lists have very
different score gradients; on homogeneous uniform lists it tracks
memoized TA.  Both regimes are recorded.
"""

from benchmarks.conftest import RESULTS_DIR, bench_scale
from repro.algorithms.base import get_algorithm
from repro.datagen import UniformGenerator
from repro.datagen.zipf import zipf_scores
from repro.lists.database import Database


def _heterogeneous_database(n: int, m: int) -> Database:
    """Half the lists drop like Zipf(1.2), half are nearly flat."""
    steep = zipf_scores(n, theta=1.2, scale=1000.0)
    rows = []
    for index in range(m):
        if index % 2 == 0:
            rows.append(list(steep))
        else:
            rows.append([500.0 - 0.001 * i for i in range(n)])
    return Database.from_score_rows(rows)


def test_quick_combine_comparison(benchmark):
    scale = bench_scale()
    databases = {
        "uniform": UniformGenerator().generate(scale.n, scale.m, seed=scale.seed),
        "heterogeneous": _heterogeneous_database(scale.n, scale.m),
    }

    def sweep():
        rows = []
        for db_name, database in databases.items():
            for name, algorithm in (
                ("qc", get_algorithm("qc")),
                ("ta(memo)", get_algorithm("ta", memoize=True)),
                ("bpa2", get_algorithm("bpa2")),
            ):
                result = algorithm.run(database, scale.k)
                rows.append((db_name, name, result.tally.total,
                             result.stop_position))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"Quick-Combine comparison (n={scale.n}, m={scale.m}, k={scale.k})",
        f"{'database':>15} {'algorithm':>10} {'accesses':>10} {'depth':>7}",
    ]
    for db_name, name, accesses, depth in rows:
        lines.append(f"{db_name:>15} {name:>10} {accesses:>10,} {depth:>7,}")
    (RESULTS_DIR / "quick_combine.txt").write_text("\n".join(lines) + "\n")

    by_key = {(db, name): acc for db, name, acc, _d in rows}
    # On the heterogeneous database the adaptive scheduler must beat
    # round-robin TA clearly.
    assert by_key[("heterogeneous", "qc")] < by_key[("heterogeneous", "ta(memo)")]
    # On uniform it stays in the same ballpark (within 3x).
    assert by_key[("uniform", "qc")] < by_key[("uniform", "ta(memo)")] * 3
