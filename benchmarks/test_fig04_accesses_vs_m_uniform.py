"""Figure 4: number of accesses vs number of lists, uniform database."""

from benchmarks.conftest import (
    assert_bpa2_fewest_accesses,
    assert_bpa_never_worse_than_ta,
    run_figure,
)


def test_fig04_accesses_vs_m_uniform(benchmark):
    table = run_figure(benchmark, "fig4")
    assert_bpa_never_worse_than_ta(table)
    assert_bpa2_fewest_accesses(table)
    # The access gap between BPA2 and TA widens with m (paper: the gain
    # factor grows roughly linearly in m).
    first_m, last_m = table.sweep_values[0], table.sweep_values[-1]
    gain_first = table.value(first_m, "ta") / table.value(first_m, "bpa2")
    gain_last = table.value(last_m, "ta") / table.value(last_m, "bpa2")
    assert gain_last > gain_first
