"""Section 6.2.4 headline claim: BPA ~ (m+6)/8 x and BPA2 ~ (m+1)/2 x
cheaper than TA on the uniform database.

The bench regenerates the factor table (measured vs paper prediction) and
writes it to ``benchmarks/results/claims.txt``.  The assertions encode
what a faithful reimplementation can guarantee (see EXPERIMENTS.md for
the full deviation analysis):

* BPA is never more expensive than TA at any m (Theorem 2 — always holds);
* BPA2's cost advantage over TA grows with m and is substantial at the
  top of the sweep (the (m+1)/2 *shape*);
* the paper's exact BPA factor (m+6)/8 does NOT emerge on independent
  uniform lists — best positions barely outrun the sorted cursor when
  item positions are independent — so we assert the measured BPA factor
  is ~1 rather than pretending otherwise.
"""

from benchmarks.conftest import RESULTS_DIR, bench_scale
from repro.bench.experiments import get_figure, speedup_factors


def test_claims_speedup_factors(benchmark):
    scale = bench_scale()
    table = benchmark.pedantic(
        lambda: get_figure("fig3").run(scale), rounds=1, iterations=1
    )
    factors = speedup_factors(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        "Speedup over TA (execution cost), uniform database",
        f"{'m':>4} {'BPA meas':>10} {'BPA paper':>10} "
        f"{'BPA2 meas':>10} {'BPA2 paper':>11}",
    ]
    for m in table.sweep_values:
        lines.append(
            f"{int(m):>4} {factors['bpa_measured'][m]:>10.2f} "
            f"{factors['bpa_paper'][m]:>10.2f} "
            f"{factors['bpa2_measured'][m]:>10.2f} "
            f"{factors['bpa2_paper'][m]:>11.2f}"
        )
    (RESULTS_DIR / "claims.txt").write_text("\n".join(lines) + "\n")

    for m in table.sweep_values:
        # Theorem 2: BPA never loses to TA.
        assert factors["bpa_measured"][m] >= 1.0 - 1e-9
    # BPA2's gain grows with m ...
    first_m, last_m = table.sweep_values[0], table.sweep_values[-1]
    assert factors["bpa2_measured"][last_m] > factors["bpa2_measured"][first_m]
    # ... and is substantial at the top of the sweep.
    assert factors["bpa2_measured"][last_m] > 1.5
    # Deviation (documented): on independent lists BPA ~ TA, far from the
    # paper's (m+6)/8.  If this ever starts matching the paper, update
    # EXPERIMENTS.md.
    assert factors["bpa_measured"][last_m] < factors["bpa_paper"][last_m]
