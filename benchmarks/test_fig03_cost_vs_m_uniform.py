"""Figure 3: execution cost vs number of lists, uniform database."""

from benchmarks.conftest import (
    assert_bpa2_fewest_accesses,
    assert_bpa_never_worse_than_ta,
    assert_grows_with_sweep,
    run_figure,
)


def test_fig03_cost_vs_m_uniform(benchmark):
    table = run_figure(benchmark, "fig3")
    assert_bpa_never_worse_than_ta(table)
    assert_bpa2_fewest_accesses(table)
    # Cost explodes with m on independent data (paper Figure 3's shape).
    assert_grows_with_sweep(table, "ta", factor=5.0)
    # From m >= 6 on, BPA2's no-re-access property beats TA on cost even
    # though direct accesses are charged at the random-access rate.
    for m in table.sweep_values:
        if m >= 6:
            assert table.value(m, "bpa2") < table.value(m, "ta")
