"""Section 5.2 ablation: bit array vs B+tree best-position management.

Times the raw trackers on access patterns with different densities (the
paper: bit array costs O(n/u) amortized, B+tree O(log u) — so the B+tree
wins when the list is long but only a few positions are ever seen), and
times full BPA runs with each tracker.
"""

import random

import pytest

from benchmarks.conftest import bench_scale
from repro.core.best_position import make_tracker
from repro.algorithms.base import get_algorithm
from repro.datagen import UniformGenerator


def _drive_tracker(kind: str, n: int, marks: list[int]) -> int:
    tracker = make_tracker(kind, n)
    for position in marks:
        tracker.mark(position)
    return tracker.best_position


@pytest.mark.parametrize("kind", ["bitarray", "btree", "naive"])
def test_tracker_dense_marks(benchmark, kind):
    """Dense pattern: every position eventually seen (u ~ n)."""
    n = 20_000
    rng = random.Random(3)
    marks = list(range(1, n + 1))
    rng.shuffle(marks)
    if kind == "naive":
        # The naive tracker's O(u) best_position walk makes dense n=20k
        # runs pointless to time; use a smaller instance to keep the
        # bench suite fast while still recording its order of magnitude.
        n = 2_000
        marks = [p for p in marks if p <= n]
    result = benchmark(lambda: _drive_tracker(kind, n, marks))
    assert result == n


@pytest.mark.parametrize("kind", ["bitarray", "btree"])
def test_tracker_sparse_marks(benchmark, kind):
    """Sparse pattern: u << n (the regime where the B+tree shines)."""
    n = 2_000_000
    rng = random.Random(4)
    marks = sorted(rng.sample(range(2, n + 1), 2_000))
    final = benchmark(lambda: _drive_tracker(kind, n, marks))
    assert final == 0  # position 1 never seen


@pytest.mark.parametrize("tracker", ["bitarray", "btree"])
def test_bpa_end_to_end_by_tracker(benchmark, tracker):
    scale = bench_scale()
    database = UniformGenerator().generate(scale.n, 4, seed=scale.seed)
    algorithm = get_algorithm("bpa", tracker=tracker)
    result = benchmark.pedantic(
        lambda: algorithm.run(database, scale.k), rounds=3, iterations=1
    )
    assert result.k == scale.k
