"""Where does BPA's advantage switch on?  A correlation sweep.

EXPERIMENTS.md documents that BPA ~ TA on *independent* lists (the
coverage-gap model) while the paper reports gains on its uniform
databases.  This bench sweeps the Gaussian-copula correlation ``rho``
from 0 (independent) to 0.95 and records the TA/BPA and TA/BPA2 cost
ratios — making the transition measurable instead of anecdotal.
"""

from benchmarks.conftest import RESULTS_DIR, bench_scale
from repro.algorithms.base import get_algorithm
from repro.datagen.copula import GaussianCopulaGenerator
from repro.types import CostModel

RHOS = (0.0, 0.25, 0.5, 0.75, 0.9, 0.95)


def test_correlation_sweep(benchmark):
    scale = bench_scale()
    model = CostModel.paper(scale.n)

    def sweep():
        rows = []
        for rho in RHOS:
            database = GaussianCopulaGenerator(rho=rho).generate(
                scale.n, scale.m, seed=scale.seed
            )
            costs = {}
            for name in ("ta", "bpa", "bpa2"):
                result = get_algorithm(name).run(database, scale.k)
                costs[name] = model.execution_cost(result.tally)
            rows.append((rho, costs["ta"], costs["bpa"], costs["bpa2"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"BPA/BPA2 gain vs correlation rho (copula, n={scale.n}, "
        f"m={scale.m}, k={scale.k})",
        f"{'rho':>6} {'TA cost':>12} {'TA/BPA':>8} {'TA/BPA2':>8}",
    ]
    for rho, ta, bpa, bpa2 in rows:
        lines.append(
            f"{rho:>6.2f} {ta:>12,.0f} {ta / bpa:>8.2f} {ta / bpa2:>8.2f}"
        )
    (RESULTS_DIR / "correlation_sweep.txt").write_text("\n".join(lines) + "\n")

    # Cost falls as correlation rises (the paper's qualitative claim).
    ta_costs = [ta for _rho, ta, _bpa, _bpa2 in rows]
    assert ta_costs[-1] < ta_costs[0]
    # BPA ~ TA at rho = 0; its gain grows with correlation.
    first_gain = rows[0][1] / rows[0][2]
    last_gain = rows[-1][1] / rows[-1][2]
    assert first_gain < 1.1
    assert last_gain >= first_gain
    # Theorem 2 at every point.
    for _rho, ta, bpa, _bpa2 in rows:
        assert bpa <= ta * (1 + 1e-9)
