"""Theorem 8 bench: databases where BPA2 does ~(m-1)x fewer accesses."""

from benchmarks.conftest import RESULTS_DIR
from repro.algorithms.base import get_algorithm
from repro.datagen.adversarial import bpa2_favorable_database

CASES = [(3, 10), (4, 10), (6, 10), (8, 10), (10, 10)]


def test_theorem8_separation_across_m(benchmark):
    def sweep():
        rows = []
        for m, u in CASES:
            database, info = bpa2_favorable_database(m, u)
            bpa = get_algorithm("bpa").run(database, 3)
            bpa2 = get_algorithm("bpa2").run(database, 3)
            rows.append((m, u, info.j, bpa.tally.total, bpa2.tally.total))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        "Theorem 8 worst cases: BPA vs BPA2 total accesses",
        f"{'m':>4} {'u':>4} {'BPA acc':>9} {'BPA2 acc':>9} "
        f"{'ratio':>7} {'predicted':>10}",
    ]
    for m, u, j, bpa_acc, bpa2_acc in rows:
        predicted = j / (u + 1)
        lines.append(
            f"{m:>4} {u:>4} {bpa_acc:>9} {bpa2_acc:>9} "
            f"{bpa_acc / bpa2_acc:>7.2f} {predicted:>10.2f}"
        )
    (RESULTS_DIR / "theorem8.txt").write_text("\n".join(lines) + "\n")

    for m, u, j, bpa_acc, bpa2_acc in rows:
        ratio = bpa_acc / bpa2_acc
        assert abs(ratio - j / (u + 1)) < 1e-9
        # With u=10 the ratio sits within 10% of the asymptotic (m-1).
        assert ratio > (m - 1) * 0.85
