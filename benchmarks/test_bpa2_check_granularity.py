"""Ablation: BPA2 stop-rule granularity (per-round vs per-access).

The paper's BPA2 evaluates the stopping rule once per round of direct
accesses (like TA).  Checking after every single access can only stop
earlier, at the price of m times more lambda evaluations.  This bench
quantifies the (small) access savings.
"""

from benchmarks.conftest import RESULTS_DIR, bench_scale
from repro.algorithms.base import get_algorithm
from repro.datagen import CorrelatedGenerator, UniformGenerator


def test_check_granularity(benchmark):
    scale = bench_scale()
    databases = {
        "uniform": UniformGenerator().generate(scale.n, scale.m, seed=scale.seed),
        "correlated(0.01)": CorrelatedGenerator(alpha=0.01).generate(
            scale.n, scale.m, seed=scale.seed
        ),
    }

    def sweep():
        rows = []
        for db_name, database in databases.items():
            per_round = get_algorithm("bpa2").run(database, scale.k)
            per_access = get_algorithm("bpa2", check_every_access=True).run(
                database, scale.k
            )
            rows.append(
                (db_name, per_round.tally.total, per_access.tally.total)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"BPA2 stop-check granularity (n={scale.n}, m={scale.m}, k={scale.k})",
        f"{'database':>18} {'per-round acc':>14} {'per-access acc':>15}",
    ]
    for db_name, per_round, per_access in rows:
        lines.append(f"{db_name:>18} {per_round:>14,} {per_access:>15,}")
    (RESULTS_DIR / "bpa2_granularity.txt").write_text("\n".join(lines) + "\n")

    for _db, per_round, per_access in rows:
        assert per_access <= per_round
        # The saving is bounded by one round's worth of work.
        assert per_round - per_access <= scale.m * scale.m
