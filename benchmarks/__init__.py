"""Figure benchmarks as a package.

The ``__init__.py`` makes pytest import these modules as
``benchmarks.test_*`` instead of top-level ``test_*``, so basenames can
never collide with the tier-1 modules under ``tests/`` (both trees have a
``test_quick_combine.py``).  Run standalone with ``pytest benchmarks``.
"""
