"""Figure 11: execution cost vs number of lists, correlated alpha=0.1."""

from benchmarks.conftest import (
    assert_bpa2_fewest_accesses,
    assert_bpa_never_worse_than_ta,
    run_figure,
)


def test_fig11_cost_vs_m_corr1(benchmark):
    table = run_figure(benchmark, "fig11")
    assert_bpa_never_worse_than_ta(table)
    assert_bpa2_fewest_accesses(table)
