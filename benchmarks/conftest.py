"""Shared machinery for the figure benchmarks.

Every paper figure has one bench module.  Running::

    pytest benchmarks/ --benchmark-only

executes each figure's full parameter sweep once (timed by
pytest-benchmark), writes the regenerated table to
``benchmarks/results/<figure>.txt`` / ``.csv``, and asserts the *shape*
claims that must hold at any scale (who wins, orderings, monotonicity).

Scale is controlled by ``REPRO_SCALE``; benches default to ``smoke`` so
the whole suite finishes in a couple of minutes.  Set
``REPRO_SCALE=default`` or ``paper`` for bigger grids (see
``repro/bench/config.py``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.config import Scale, resolve_scale
from repro.bench.experiments import get_figure
from repro.bench.harness import ResultTable

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> Scale:
    """Benchmarks default to smoke scale unless REPRO_SCALE says otherwise."""
    return resolve_scale(os.environ.get("REPRO_SCALE", "smoke"))


def save_table(table: ResultTable) -> None:
    """Persist a regenerated figure table next to the benchmarks."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.to_text()
    if table.metric != "accesses":
        text += "\n\n" + table.to_text("accesses")
    (RESULTS_DIR / f"{table.experiment}.txt").write_text(text + "\n")
    (RESULTS_DIR / f"{table.experiment}.csv").write_text(table.to_csv() + "\n")


def run_figure(benchmark, figure_name: str) -> ResultTable:
    """Execute one figure's sweep exactly once under the benchmark timer."""
    scale = bench_scale()
    experiment = get_figure(figure_name)
    table = benchmark.pedantic(
        lambda: experiment.run(scale), rounds=1, iterations=1
    )
    save_table(table)
    return table


# ---------------------------------------------------------------------------
# Common shape assertions (the scale-independent claims)
# ---------------------------------------------------------------------------

def assert_bpa_never_worse_than_ta(table: ResultTable) -> None:
    """Theorem 2 / Lemma 1, visible in every figure."""
    for value in table.sweep_values:
        assert table.value(value, "bpa", "execution_cost") <= table.value(
            value, "ta", "execution_cost"
        ) * (1 + 1e-9), f"BPA cost above TA at {table.sweep_name}={value}"
        assert table.value(value, "bpa", "accesses") <= table.value(
            value, "ta", "accesses"
        ) + 1e-9


def assert_bpa2_fewest_accesses(table: ResultTable) -> None:
    """Theorem 7: BPA2 never does more accesses than BPA."""
    for value in table.sweep_values:
        assert table.value(value, "bpa2", "accesses") <= table.value(
            value, "bpa", "accesses"
        ) + 1e-9, f"BPA2 accesses above BPA at {table.sweep_name}={value}"


def assert_series_nondecreasing(table: ResultTable, algorithm: str,
                                metric: str | None = None) -> None:
    """For k-sweeps on a fixed database the cost is exactly monotone."""
    series = table.series(algorithm, metric)
    for earlier, later in zip(series, series[1:]):
        assert later >= earlier - 1e-9, (
            f"{algorithm} {metric or table.metric} decreased along "
            f"{table.sweep_name}: {series}"
        )


def assert_grows_with_sweep(table: ResultTable, algorithm: str,
                            factor: float = 1.5) -> None:
    """The last sweep point must cost noticeably more than the first."""
    series = table.series(algorithm)
    assert series[-1] >= series[0] * factor, (
        f"{algorithm} did not grow along {table.sweep_name}: {series}"
    )


@pytest.fixture(scope="session")
def scale() -> Scale:
    return bench_scale()
