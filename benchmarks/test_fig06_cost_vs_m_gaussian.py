"""Figure 6: execution cost vs number of lists, Gaussian database."""

from benchmarks.conftest import (
    assert_bpa2_fewest_accesses,
    assert_bpa_never_worse_than_ta,
    assert_grows_with_sweep,
    run_figure,
)


def test_fig06_cost_vs_m_gaussian(benchmark):
    table = run_figure(benchmark, "fig6")
    assert_bpa_never_worse_than_ta(table)
    assert_bpa2_fewest_accesses(table)
    assert_grows_with_sweep(table, "ta", factor=5.0)
