"""Ablation: theta-approximation cost savings (extension, not in paper).

Sweeps Fagin's approximation factor over TA, BPA and BPA2 on a uniform
database and records how much of the exact cost each theta buys back.
"""

from benchmarks.conftest import RESULTS_DIR, bench_scale
from repro.algorithms.base import get_algorithm
from repro.datagen import UniformGenerator

THETAS = (1.0, 1.05, 1.1, 1.25, 1.5, 2.0)


def test_theta_sweep(benchmark):
    scale = bench_scale()
    database = UniformGenerator().generate(scale.n, scale.m, seed=scale.seed)

    def sweep():
        rows = []
        for name in ("ta", "bpa", "bpa2"):
            for theta in THETAS:
                algorithm = get_algorithm(name, approximation=theta)
                result = algorithm.run(database, scale.k)
                rows.append((name, theta, result.tally.total))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"theta-approximation ablation (uniform, n={scale.n}, "
        f"m={scale.m}, k={scale.k})",
        f"{'algorithm':>10} {'theta':>6} {'accesses':>10} {'vs exact':>9}",
    ]
    exact = {name: acc for name, theta, acc in rows if theta == 1.0}
    for name, theta, accesses in rows:
        lines.append(
            f"{name:>10} {theta:>6.2f} {accesses:>10,} "
            f"{accesses / exact[name]:>8.0%}"
        )
    (RESULTS_DIR / "approximation.txt").write_text("\n".join(lines) + "\n")

    for name, theta, accesses in rows:
        assert accesses <= exact[name]
    # theta=2 must save noticeably on a uniform database.
    for name in ("ta", "bpa", "bpa2"):
        theta2 = next(acc for nm, th, acc in rows if nm == name and th == 2.0)
        assert theta2 < exact[name] * 0.7, name
