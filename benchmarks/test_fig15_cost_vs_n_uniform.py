"""Figure 15: execution cost vs n, uniform database, m=8."""

from benchmarks.conftest import (
    assert_bpa_never_worse_than_ta,
    assert_grows_with_sweep,
    run_figure,
)


def test_fig15_cost_vs_n_uniform(benchmark):
    table = run_figure(benchmark, "fig15")
    assert_bpa_never_worse_than_ta(table)
    # Paper Section 6.2.3: n has a considerable impact on uniform data
    # (top-k items spread over deeper positions as lists grow).
    assert_grows_with_sweep(table, "ta", factor=2.0)
    assert_grows_with_sweep(table, "bpa2", factor=2.0)
