"""Figure 7: number of accesses vs number of lists, Gaussian database."""

from benchmarks.conftest import (
    assert_bpa2_fewest_accesses,
    assert_bpa_never_worse_than_ta,
    run_figure,
)


def test_fig07_accesses_vs_m_gaussian(benchmark):
    table = run_figure(benchmark, "fig7")
    assert_bpa_never_worse_than_ta(table)
    assert_bpa2_fewest_accesses(table)
    # Paper Section 6.2.1: Gaussian results are qualitatively the same as
    # uniform — BPA2's access gain grows with m here too.
    first_m, last_m = table.sweep_values[0], table.sweep_values[-1]
    gain_first = table.value(first_m, "ta") / table.value(first_m, "bpa2")
    gain_last = table.value(last_m, "ta") / table.value(last_m, "bpa2")
    assert gain_last > gain_first
