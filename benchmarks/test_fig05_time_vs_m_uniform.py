"""Figure 5: response time vs number of lists, uniform database.

Absolute milliseconds are machine- and runtime-dependent (the paper used
Java on a 2.4 GHz Pentium 4); the reproducible claim is the ordering —
response time tracks the number of accesses, so BPA2 is fastest at large
m — and the growth with m.
"""

from benchmarks.conftest import run_figure


def test_fig05_time_vs_m_uniform(benchmark):
    table = run_figure(benchmark, "fig5")
    last_m = table.sweep_values[-1]
    # Response time grows with m for every algorithm.
    for algorithm in table.algorithms:
        series = table.series(algorithm, "response_time_ms")
        assert series[-1] > series[0]
    # At the largest m, BPA2 (fewest accesses) is not the slowest.
    times = {
        a: table.value(last_m, a, "response_time_ms") for a in table.algorithms
    }
    assert times["bpa2"] < max(times.values()) * (1 + 1e-9)
    assert times["bpa2"] < times["bpa"]
