"""Figure 13: execution cost vs k, correlated alpha=0.01, m=8."""

from benchmarks.conftest import (
    assert_bpa_never_worse_than_ta,
    assert_series_nondecreasing,
    run_figure,
)


def test_fig13_cost_vs_k_corr01(benchmark):
    table = run_figure(benchmark, "fig13")
    assert_bpa_never_worse_than_ta(table)
    for algorithm in table.algorithms:
        assert_series_nondecreasing(table, algorithm)
