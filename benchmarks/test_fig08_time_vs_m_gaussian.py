"""Figure 8: response time vs number of lists, Gaussian database."""

from benchmarks.conftest import run_figure


def test_fig08_time_vs_m_gaussian(benchmark):
    table = run_figure(benchmark, "fig8")
    for algorithm in table.algorithms:
        series = table.series(algorithm, "response_time_ms")
        assert series[-1] > series[0]
    last_m = table.sweep_values[-1]
    assert table.value(last_m, "bpa2", "response_time_ms") < table.value(
        last_m, "bpa", "response_time_ms"
    )
