"""Lemma 3 bench: databases where BPA beats TA by the (m-1) bound."""

from benchmarks.conftest import RESULTS_DIR
from repro.algorithms.base import get_algorithm
from repro.datagen.adversarial import bpa_favorable_database

CASES = [(3, 10), (4, 10), (6, 10), (8, 10), (10, 10)]


def test_lemma3_separation_across_m(benchmark):
    def sweep():
        rows = []
        for m, u in CASES:
            database, info = bpa_favorable_database(m, u)
            ta = get_algorithm("ta").run(database, 3)
            bpa = get_algorithm("bpa").run(database, 3)
            rows.append((m, u, ta.stop_position, bpa.stop_position,
                         ta.tally.total, bpa.tally.total))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        "Lemma 3 worst cases: TA vs BPA stop position",
        f"{'m':>4} {'u':>4} {'TA stop':>8} {'BPA stop':>9} "
        f"{'TA acc':>8} {'BPA acc':>8} {'ratio':>7} {'m-1':>5}",
    ]
    for m, u, ta_stop, bpa_stop, ta_acc, bpa_acc in rows:
        lines.append(
            f"{m:>4} {u:>4} {ta_stop:>8} {bpa_stop:>9} "
            f"{ta_acc:>8} {bpa_acc:>8} {ta_stop / bpa_stop:>7.2f} {m - 1:>5}"
        )
    (RESULTS_DIR / "lemma3.txt").write_text("\n".join(lines) + "\n")

    for m, _u, ta_stop, bpa_stop, ta_acc, bpa_acc in rows:
        assert ta_stop / bpa_stop >= m - 1
        assert ta_acc / bpa_acc >= m - 1
