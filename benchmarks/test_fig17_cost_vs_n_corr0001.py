"""Figure 17: execution cost vs n, correlated alpha=0.0001, m=8."""

from benchmarks.conftest import (
    assert_bpa_never_worse_than_ta,
    run_figure,
)


def test_fig17_cost_vs_n_corr0001(benchmark):
    table = run_figure(benchmark, "fig17")
    assert_bpa_never_worse_than_ta(table)
    # Highly correlated data barely notices n (paper: "n has a smaller
    # impact on a highly correlated database").
    series = table.series("ta")
    n_growth = table.sweep_values[-1] / table.sweep_values[0]
    assert series[-1] < series[0] * n_growth
