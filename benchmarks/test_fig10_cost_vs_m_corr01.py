"""Figure 10: execution cost vs number of lists, correlated alpha=0.01."""

from benchmarks.conftest import (
    assert_bpa2_fewest_accesses,
    assert_bpa_never_worse_than_ta,
    run_figure,
)


def test_fig10_cost_vs_m_corr01(benchmark):
    table = run_figure(benchmark, "fig10")
    assert_bpa_never_worse_than_ta(table)
    assert_bpa2_fewest_accesses(table)
    # BPA2's no-re-access property shows up as a clear cost win on
    # correlated data for m > 2.
    for m in table.sweep_values:
        if m > 2:
            assert table.value(m, "bpa2") < table.value(m, "ta")
