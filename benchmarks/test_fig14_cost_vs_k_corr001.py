"""Figure 14: execution cost vs k, correlated alpha=0.001, m=8.

Paper Section 6.2.2: on a *highly* correlated database k has a relatively
larger impact than on a weakly correlated one, because so few items are
seen before stopping that each extra answer forces a deeper scan.
"""

from benchmarks.conftest import (
    assert_bpa_never_worse_than_ta,
    assert_series_nondecreasing,
    run_figure,
)


def test_fig14_cost_vs_k_corr001(benchmark):
    table = run_figure(benchmark, "fig14")
    assert_bpa_never_worse_than_ta(table)
    for algorithm in table.algorithms:
        assert_series_nondecreasing(table, algorithm)
    # Relative growth here exceeds the uniform database's (Figure 12).
    series = table.series("ta")
    assert series[-1] > series[0]
