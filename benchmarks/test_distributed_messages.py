"""Distributed metric (paper Section 6.1 metric 2 + Section 7).

Message and byte counts of the distributed drivers, including the TPUT
related-work baseline.  The scale-independent claims:

* messages = 2 x accesses for the per-access RPC drivers, so BPA2's
  access savings are message savings;
* BPA ships strictly more bytes than TA (it transfers seen positions);
* BPA2 ships fewer bytes than BPA (owners keep the positions);
* TPUT uses O(m) round trips — orders of magnitude fewer messages,
  at the price of bulk transfers.
"""

from benchmarks.conftest import RESULTS_DIR, bench_scale
from repro.datagen import CorrelatedGenerator, UniformGenerator
from repro.distributed import (
    DistributedBPA,
    DistributedBPA2,
    DistributedTA,
    DistributedTPUT,
)


def test_distributed_message_bill(benchmark):
    scale = bench_scale()
    n = min(scale.n, 5_000)  # per-access RPC over python dicts; keep modest
    databases = {
        "uniform": UniformGenerator().generate(n, 5, seed=scale.seed),
        "correlated(0.01)": CorrelatedGenerator(alpha=0.01).generate(
            n, 5, seed=scale.seed
        ),
    }

    def sweep():
        rows = []
        for db_name, database in databases.items():
            for driver in (DistributedTA(), DistributedBPA(),
                           DistributedBPA2(), DistributedTPUT()):
                result = driver.run(database, scale.k)
                net = result.extras["network"]
                rows.append(
                    (db_name, driver.name, net["messages"], net["bytes"],
                     result.tally.total)
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"Distributed drivers, n={n}, m=5, k={scale.k}",
        f"{'database':>18} {'driver':>10} {'messages':>10} "
        f"{'bytes':>12} {'accesses':>10}",
    ]
    for db_name, driver, messages, size, accesses in rows:
        lines.append(
            f"{db_name:>18} {driver:>10} {messages:>10,} "
            f"{size:>12,} {accesses:>10,}"
        )
    (RESULTS_DIR / "distributed.txt").write_text("\n".join(lines) + "\n")

    by_key = {(db, drv): (msg, size, acc) for db, drv, msg, size, acc in rows}
    for db_name in databases:
        ta_msg, ta_bytes, ta_acc = by_key[(db_name, "dist-ta")]
        bpa_msg, bpa_bytes, _ = by_key[(db_name, "dist-bpa")]
        bpa2_msg, bpa2_bytes, _ = by_key[(db_name, "dist-bpa2")]
        tput_msg, _, _ = by_key[(db_name, "tput")]
        assert ta_msg == 2 * ta_acc
        assert bpa_bytes > ta_bytes  # positions on the wire
        assert bpa2_msg <= bpa_msg
        assert bpa2_bytes < bpa_bytes  # owners keep the positions
        # TPUT's bulk phases always undercut per-access RPC; the margin is
        # huge when scans are deep (uniform) and shrinks when every driver
        # stops early (correlated), where phase-3 lookups dominate.
        assert tput_msg < ta_msg
