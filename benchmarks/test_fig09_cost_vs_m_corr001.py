"""Figure 9: execution cost vs number of lists, correlated alpha=0.001."""

from benchmarks.conftest import (
    assert_bpa2_fewest_accesses,
    assert_bpa_never_worse_than_ta,
    bench_scale,
    run_figure,
)


def test_fig09_cost_vs_m_corr001(benchmark):
    table = run_figure(benchmark, "fig9")
    assert_bpa_never_worse_than_ta(table)
    assert_bpa2_fewest_accesses(table)
    # Strongly correlated data stops early: every algorithm scans only a
    # small prefix of the lists (the paper's Figure 9 y-axis is ~300x
    # smaller than Figure 3's).
    n = bench_scale().n
    for m in table.sweep_values:
        assert table.value(m, "ta", "stop_position") < n / 10
