"""Figure 12: execution cost vs k, uniform database, m=8."""

from benchmarks.conftest import (
    assert_bpa_never_worse_than_ta,
    assert_series_nondecreasing,
    run_figure,
)


def test_fig12_cost_vs_k_uniform(benchmark):
    table = run_figure(benchmark, "fig12")
    assert_bpa_never_worse_than_ta(table)
    # On one fixed database the stop position cannot shrink as k grows.
    for algorithm in table.algorithms:
        assert_series_nondecreasing(table, algorithm)
    # Paper Section 6.2.2: the increase with k is very small on uniform
    # data — far less than the 10x growth of k itself.
    series = table.series("ta")
    assert series[-1] < series[0] * 3
