"""Keyword search: top-k documents by aggregate relevance.

The paper's second motivating example: "to find the top-k documents
whose aggregate rank is the highest wrt. some given keywords ... have
for each keyword a ranked list of documents, and return the k documents
whose aggregate rank in all lists are the highest."

This example builds a tiny search engine over a synthetic corpus: each
query keyword has a posting list of (document, tf-idf-like score) sorted
by relevance, and a weighted-sum scoring function expresses that the
first keyword matters more than the rest.  BPA answers the query while
touching a fraction of the postings.

Run:  python examples/document_retrieval.py
"""

import math
import random

from repro import (
    BestPositionAlgorithm,
    Database,
    SortedList,
    ThresholdAlgorithm,
    WeightedSumScoring,
)

N_DOCS = 2_000
KEYWORDS = ("database", "distributed", "query", "optimization")
K = 5
SEED = 2007


def synth_relevance(rng: random.Random, keyword_index: int, doc: int) -> float:
    """A tf-idf-flavoured synthetic relevance score in [0, ~10].

    Each keyword has a few hundred highly relevant documents (those whose
    id falls in the keyword's "topic band") and background noise for the
    rest — giving realistic skew: a document relevant to one keyword is
    often relevant to neighbouring topics too.
    """
    band_center = (keyword_index + 1) * N_DOCS // (len(KEYWORDS) + 1)
    distance = abs(doc - band_center)
    topical = 8.0 * math.exp(-distance / 150.0)
    noise = rng.random()
    return topical + noise


def build_index() -> Database:
    """One posting list per keyword over the same corpus."""
    rng = random.Random(SEED)
    rows = []
    for keyword_index, _keyword in enumerate(KEYWORDS):
        rows.append(
            [synth_relevance(rng, keyword_index, doc) for doc in range(N_DOCS)]
        )
    labels = {doc: f"doc-{doc:05d}" for doc in range(N_DOCS)}
    return Database.from_score_rows(rows, labels=labels)


def main() -> None:
    database = build_index()
    print(f"corpus: {N_DOCS:,} documents, keywords: {', '.join(KEYWORDS)}")

    # The first keyword is the user's main term; weight it 2x.
    scoring = WeightedSumScoring([2.0, 1.0, 1.0, 1.0])

    bpa = BestPositionAlgorithm().run(database, K, scoring)
    ta = ThresholdAlgorithm().run(database, K, scoring)

    print(f"\ntop-{K} documents for query {' '.join(KEYWORDS)!r} "
          f"(first keyword weighted 2x):")
    for rank, entry in enumerate(bpa.items, start=1):
        per_keyword = database.local_scores(entry.item)
        detail = ", ".join(
            f"{kw}={score:.2f}" for kw, score in zip(KEYWORDS, per_keyword)
        )
        print(f"  {rank}. {database.label(entry.item)}  "
              f"score={entry.score:.3f}  ({detail})")

    touched = bpa.stop_position
    print(f"\nBPA scanned {touched:,} of {N_DOCS:,} postings per list "
          f"({100 * touched / N_DOCS:.1f}%) — {bpa.tally.total:,} accesses "
          f"vs TA's {ta.tally.total:,} "
          f"(naive scan would read all {len(KEYWORDS) * N_DOCS:,} postings).")


if __name__ == "__main__":
    main()
