"""Progressive search: stream answers without choosing k in advance.

An interactive search UI shows a first page immediately, then fetches
more results as the user scrolls.  ``progressive_topk`` supports exactly
that: answers are emitted in overall-score order the moment they provably
cannot be beaten, and the accesses consumed grow with how far the user
actually scrolls.

The example also shows the theta-approximation knob: with
``approximation=1.5`` the algorithms stop much earlier while every
missed item is guaranteed to score at most 1.5x the k-th answer — a
classic quality/latency trade for interactive workloads.

Run:  python examples/progressive_search.py
"""

import itertools

from repro import (
    SUM,
    AccessTally,
    ThresholdAlgorithm,
    UniformGenerator,
    get_algorithm,
    progressive_topk,
)

N, M, SEED = 20_000, 5, 77
PAGE_SIZE = 10


def main() -> None:
    database = UniformGenerator().generate(N, M, seed=SEED)
    print(f"index: {N:,} items x {M} lists\n")

    # --- stream three result pages ------------------------------------
    tally = AccessTally()
    stream = progressive_topk(database, SUM, mechanism="bpa", tally_out=tally)
    for page in range(1, 4):
        rows = list(itertools.islice(stream, PAGE_SIZE))
        print(f"page {page}: scores "
              f"{rows[0].score:.3f} .. {rows[-1].score:.3f}   "
              f"(cumulative accesses: {tally.total:,})")
    full_scan = N * M
    print(f"\nthree pages cost {tally.total:,} accesses; a full scan is "
          f"{full_scan:,}.\n")

    # --- the approximation trade-off -----------------------------------
    print("theta-approximation (top-20, exact vs approximate):")
    exact = ThresholdAlgorithm().run(database, 20, SUM)
    print(f"  theta=1.0 : {exact.tally.total:>8,} accesses "
          f"(k-th score {min(exact.scores):.3f})")
    for theta in (1.1, 1.5):
        approx = get_algorithm("ta", approximation=theta).run(database, 20, SUM)
        print(f"  theta={theta:3.1f} : {approx.tally.total:>8,} accesses "
              f"(k-th score {min(approx.scores):.3f}; "
              f"missed items provably <= {theta}x that)")


if __name__ == "__main__":
    main()
