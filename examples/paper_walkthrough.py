"""Round-by-round walkthrough of the paper's Figure 1 example.

Replays Examples 1-3 of the paper on the exact Figure 1 database,
printing what each algorithm sees at every position — the TA threshold
column of Figure 1(b) and the best positions / lambda of Example 3 —
so you can follow the two stopping mechanisms side by side.

Run:  python examples/paper_walkthrough.py
"""

from repro import SUM, figure1_database
from repro.core.best_position import BitArrayTracker

K = 3


def walkthrough() -> None:
    database = figure1_database()
    m, n = database.m, database.n
    print("Figure 1 database (positions 1-10 as printed in the paper):\n")
    header = "  ".join(f"{'L' + str(i + 1):<12}" for i in range(m))
    print(f"pos  {header}")
    for position in range(1, 11):
        cells = []
        for lst in database.lists:
            entry = lst.entry_at(position)
            cells.append(f"{database.label(entry.item)}:{entry.score:<5g}   ")
        print(f"{position:>3}  " + "  ".join(f"{c:<12}" for c in cells))

    # --- TA's view -------------------------------------------------------
    print("\nTA threshold per position (Figure 1b):")
    overall = {
        item: sum(lst.lookup(item)[0] for lst in database.lists)
        for item in database.item_ids
    }
    top_scores = sorted(overall.values(), reverse=True)[:K]
    seen: set[int] = set()
    for position in range(1, n + 1):
        threshold = sum(lst.score_at(position) for lst in database.lists)
        for lst in database.lists:
            seen.add(lst.item_at(position))
        y = sorted((overall[item] for item in seen), reverse=True)[:K]
        stop = len(y) == K and y[-1] >= threshold
        print(f"  pos {position}: threshold={threshold:<5g} "
              f"Y-scores={y}  {'<-- TA stops' if stop else ''}")
        if stop:
            break

    # --- BPA's view ------------------------------------------------------
    print("\nBPA best positions and lambda per round (Example 3):")
    trackers = [BitArrayTracker(n) for _ in range(m)]
    seen.clear()
    for position in range(1, n + 1):
        for index, lst in enumerate(database.lists):
            item = lst.item_at(position)
            seen.add(item)
            for other_index, other in enumerate(database.lists):
                score, pos = other.lookup(item)
                trackers[other_index].mark(pos)
        bps = [tracker.best_position for tracker in trackers]
        lam = sum(
            lst.score_at(bp) for lst, bp in zip(database.lists, bps)
        )
        y = sorted((overall[item] for item in seen), reverse=True)[:K]
        stop = len(y) == K and y[-1] >= lam
        print(f"  round {position}: best positions={bps} lambda={lam:<5g} "
              f"Y-scores={y}  {'<-- BPA stops' if stop else ''}")
        if stop:
            break

    print("\nPaper: TA stops at position 6, BPA at position 3 — "
          f"(m-1) = {m - 1} times fewer sorted accesses on this database.")
    print(f"top-{K}: " + ", ".join(
        f"{database.label(item)}={score:g}"
        for item, score in sorted(overall.items(), key=lambda kv: -kv[1])[:K]
    ))


if __name__ == "__main__":
    walkthrough()
