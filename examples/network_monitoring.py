"""Network monitoring: top-k popular URLs across distributed monitors.

The scenario from the paper's conclusion: a monitoring application
watches the activity of users at several IP locations; each location
maintains a list of accessed URLs ranked by access frequency, and the
administrator asks "what are the top-k popular URLs overall?".

Each monitor is a *list owner* in the distributed simulation.  URL hit
counts are Zipf-distributed (heavy-tailed, like real web traffic) and
mildly correlated across locations (popular sites are popular
everywhere).  The example compares the message bill of distributed TA,
BPA, BPA2 and TPUT — the metric that matters when monitors are remote.

Run:  python examples/network_monitoring.py
"""

from repro import CorrelatedGenerator, Database, SortedList
from repro.distributed import (
    DistributedBPA,
    DistributedBPA2,
    DistributedTA,
    DistributedTPUT,
)

N_URLS = 5_000
N_MONITORS = 6
K = 10
SEED = 7


def build_monitor_database() -> Database:
    """Zipf-popular URLs with correlated popularity across monitors."""
    # CorrelatedGenerator already produces Zipf(0.7) scores with
    # positionally-correlated lists — exactly "popular everywhere, with
    # local variation".  alpha=0.02 keeps a URL's rank within ~2% of n
    # across monitors.
    generator = CorrelatedGenerator(alpha=0.02)
    database = generator.generate(N_URLS, N_MONITORS, seed=SEED)
    labels = {item: f"https://site-{item:04d}.example/" for item in range(N_URLS)}
    # Rebuild with labels and monitor names (Database is immutable).
    lists = [
        SortedList(
            list(zip(lst.items(), lst.scores())),
            name=f"monitor-{i + 1}",
        )
        for i, lst in enumerate(database.lists)
    ]
    return Database(lists, labels=labels)


def main() -> None:
    database = build_monitor_database()
    print(f"{N_MONITORS} monitors, {N_URLS:,} URLs each, top-{K} query\n")

    drivers = [DistributedTA(), DistributedBPA(), DistributedBPA2(), DistributedTPUT()]
    print(f"{'driver':>10} {'messages':>10} {'bytes':>12} {'accesses':>10}")
    results = {}
    for driver in drivers:
        result = driver.run(database, K)
        results[driver.name] = result
        net = result.extras["network"]
        print(f"{driver.name:>10} {net['messages']:>10,} {net['bytes']:>12,} "
              f"{result.tally.total:>10,}")

    ta_msgs = results["dist-ta"].extras["network"]["messages"]
    bpa2_msgs = results["dist-bpa2"].extras["network"]["messages"]
    print(f"\nBPA2 sends {ta_msgs / bpa2_msgs:.1f}x fewer messages than "
          f"distributed TA on this workload.")

    print(f"\ntop-{K} URLs (aggregate Zipf popularity):")
    for entry in results["dist-bpa2"].items:
        print(f"  {database.label(entry.item):<36} score={entry.score:.4f}")


if __name__ == "__main__":
    main()
