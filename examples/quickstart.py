"""Quickstart: run TA, BPA and BPA2 on a synthetic database.

Builds the paper's default setting (uniform scores, sum scoring), answers
one top-k query with each algorithm, and compares the three metrics the
paper evaluates: execution cost, number of accesses, response time.

Run:  python examples/quickstart.py
"""

import time

from repro import (
    SUM,
    BestPositionAlgorithm,
    BestPositionAlgorithm2,
    CostModel,
    ThresholdAlgorithm,
    UniformGenerator,
)

N, M, K, SEED = 10_000, 8, 20, 42


def main() -> None:
    print(f"generating uniform database: n={N:,} items, m={M} lists (seed={SEED})")
    database = UniformGenerator().generate(N, M, seed=SEED)
    model = CostModel.paper(N)  # cs = 1, cr = log2(n)

    algorithms = [ThresholdAlgorithm(), BestPositionAlgorithm(), BestPositionAlgorithm2()]
    print(f"\ntop-{K} query, sum scoring:\n")
    print(f"{'algorithm':>10} {'stop pos':>10} {'accesses':>10} "
          f"{'exec cost':>12} {'time (ms)':>10}")
    baseline_cost = None
    for algorithm in algorithms:
        started = time.perf_counter()
        result = algorithm.run(database, K, SUM)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        cost = result.execution_cost(model)
        if baseline_cost is None:
            baseline_cost = cost
        print(f"{result.algorithm:>10} {result.stop_position:>10,} "
              f"{result.tally.total:>10,} {cost:>12,.0f} {elapsed_ms:>10.1f}"
              f"   ({baseline_cost / cost:4.2f}x vs TA)")

    result = BestPositionAlgorithm().run(database, K, SUM)
    print(f"\ntop-{K} answers (item id: overall score):")
    for entry in result.items:
        print(f"  item {entry.item:>6}: {entry.score:.4f}")


if __name__ == "__main__":
    main()
