"""Quickstart: run TA, BPA and BPA2 on a synthetic database.

Builds the paper's default setting (uniform scores, sum scoring), answers
one top-k query with each algorithm, and compares the three metrics the
paper evaluates: execution cost, number of accesses, response time.

Run:  python examples/quickstart.py

The doctest below is the smallest end-to-end session; CI executes it on
every push (``tests/integration/test_quickstart_doctest.py``), so this
example cannot silently rot.  Everything is seeded, so the output is
exact:

>>> from repro import BestPositionAlgorithm, SUM, UniformGenerator
>>> database = UniformGenerator().generate(n=200, m=3, seed=7)
>>> result = BestPositionAlgorithm().run(database, k=3, scoring=SUM)
>>> result.item_ids
(16, 7, 134)
>>> [round(score, 4) for score in result.scores]
[2.6934, 2.585, 2.576]
>>> result.stop_position <= 200 and result.tally.random == result.tally.sorted * 2
True

The same query through the NumPy columnar backend returns the identical
answer with the identical access tally:

>>> from repro import ColumnarDatabase, fast_bpa
>>> result == fast_bpa(ColumnarDatabase.from_database(database), 3, SUM)
True

Batching many queries over one database amortizes the columnar
precomputation (see ``repro-topk bench compare-backends``):

>>> from repro import BatchRunner, QuerySpec
>>> report = BatchRunner(database, backend="columnar").run(
...     [QuerySpec("bpa2", k=k) for k in (1, 5, 10)])
>>> report.queries, report.kernel_queries
(3, 3)
>>> report.results[0].item_ids
(16,)

To *serve* query traffic, wrap the database in a ``QueryService``: the
planner picks algorithm and kernel per query, execution fans out over
shards with an exact merge, and repeated queries hit the result cache:

>>> from repro import QueryService
>>> service = QueryService(database, shards=2, pool="serial")
>>> first, second = service.submit_many([QuerySpec("auto", k=3)] * 2)
>>> first.item_ids == result.item_ids, first.stats.fanout
(True, 2)
>>> second.stats.cache_hit
True
>>> service.close()

Serving *changing* data, build the service over a ``DynamicDatabase``:
mutations are recorded in a bounded ``MutationLog``, and a cached answer
whose certificate (its k-th score under the library's total order)
proves a mutation harmless is **revalidated** in place instead of
recomputed — ``ServiceStats.cache_outcome`` says which of
hit/revalidated/patched/miss served each answer:

>>> from repro.dynamic import DynamicDatabase
>>> source = DynamicDatabase.from_score_rows(
...     [[9.0, 7.0, 5.0, 3.0, 1.0], [8.0, 6.0, 4.0, 2.0, 0.0]])
>>> service = QueryService(source, pool="serial")
>>> service.submit(QuerySpec("ta", k=2)).stats.cache_outcome
'miss'
>>> source.update_score(0, 4, 1.5)  # item 4 stays far below the top-2
>>> served = service.submit(QuerySpec("ta", k=2))
>>> served.stats.cache_outcome, served.item_ids
('revalidated', (0, 1))
>>> service.close()

A *standing* query subscribes once and is pushed changes instead of
polling: every mutation is classified against the maintained answer
through the same certificate, and a ``ResultDelta`` is delivered only
when the visible top-k actually moves — the harmless mutation below
pushes nothing, the overtake pushes exactly one delta:

>>> source = DynamicDatabase.from_score_rows(
...     [[9.0, 7.0, 5.0, 3.0, 1.0], [8.0, 6.0, 4.0, 2.0, 0.0]])
>>> service = QueryService(source, pool="serial")
>>> watching = service.watch(QuerySpec("ta", k=2))
>>> watching.item_ids
(0, 1)
>>> source.update_score(0, 4, 1.5)   # harmless: certified, nothing pushed
>>> source.update_score(0, 1, 12.0)  # item 1 overtakes item 0: one delta
>>> (delta,) = watching.poll()
>>> delta.cause, delta.seq, watching.item_ids
('patched', 1, (1, 0))
>>> (watching.stats.unchanged, watching.stats.patched, watching.stats.deltas)
(1, 1, 1)
>>> service.close()

The *reverse* top-k question — which registered users rank a given
item inside their personal top-k? — runs over the same service.
Register per-user weight vectors, then ``submit_reverse``: vectorized
score bounds decide most users without running a single query, and the
undecided rest fall back to their exact (cached, incrementally
maintained) top-k boundary:

>>> source = DynamicDatabase.from_score_rows(
...     [[9.0, 7.0, 5.0, 3.0, 1.0], [8.0, 6.0, 4.0, 2.0, 0.0]])
>>> service = QueryService(source, pool="serial")
>>> registry = service.reverse_registry
>>> _ = registry.add("alice", [1.0, 0.0])  # only list 0 matters to alice
>>> _ = registry.add("bob", [0.0, 1.0])
>>> _ = registry.add("cara", [1.0, 1.0])
>>> service.submit_reverse(0, k=2).users   # item 0 leads both lists
('alice', 'bob', 'cara')
>>> service.submit_reverse(2, k=2).users   # item 2 is mid-pack for all
()
>>> source.update_score(0, 2, 20.0)        # item 2 now tops list 0
>>> service.submit_reverse(2, k=2).users   # bob only watches list 1
('alice', 'cara')
>>> service.close()

Under concurrency, submit through the async front-end: ``gather_many``
runs shard fan-out on an asyncio event loop with bounded concurrency,
and identical in-flight queries are *coalesced* into one execution:

>>> import asyncio
>>> service = QueryService(database, shards=2, pool="serial")
>>> results = asyncio.run(
...     service.gather_many([QuerySpec("auto", k=3)] * 4, concurrency=2))
>>> all(r.item_ids == result.item_ids for r in results)
True
>>> service.counters.executions, service.counters.cache_hits
(1, 3)
>>> service.close()

``ServicePolicy(adaptive=True)`` closes the control loop: observed
latencies calibrate the planner's cost predictions, the networked
block width is tuned online, and a drift detector re-tunes the service
when the workload's shape moves.  The controllers are plain objects,
so the loop is easy to watch deterministically (no wall clock below —
every signal is synthetic).  A workload shift re-prices an arm and the
hysteresis-guarded selection re-plans exactly once:

>>> from repro.service import PlanFeedback
>>> feedback = PlanFeedback(min_samples=1, tolerance=0.25)
>>> signature = ("sum", 8)   # scoring key + power-of-two k bucket
>>> feedback.select(("bpa2", "ta"), {"ta": 100.0, "bpa2": 110.0},
...                 signature=signature)[0]   # cheapest prediction wins
'ta'
>>> feedback.select(("bpa2", "ta"), {"ta": 100.0, "bpa2": 90.0},
...                 signature=signature)[0]   # within hysteresis: keep ta
'ta'
>>> algorithm, replanned, _why = feedback.select(
...     ("bpa2", "ta"), {"ta": 100.0, "bpa2": 60.0}, signature=signature)
>>> (algorithm, replanned, feedback.replans)  # beyond the band: re-plan
('bpa2', True, 1)

The drift detector compares consecutive windows of bucketed query
shapes by total-variation distance; a stationary stream never fires,
a narrow-to-deep shift fires exactly one epoch:

>>> from repro.service import DriftDetector
>>> detector = DriftDetector(window=4, threshold=0.5)
>>> narrow = DriftDetector.bucket("auto", 2, SUM)
>>> deep = DriftDetector.bucket("auto", 64, SUM)
>>> any(detector.observe(narrow) for _ in range(8))
False
>>> [detector.observe(deep) for _ in range(4)]
[False, False, False, True]
>>> (detector.epochs, detector.last_divergence)
(1, 1.0)

And the block-width controller widens only on evidence — consecutive
queries whose stop depth outruns the current width — stepping up the
``{1, 2, 4, 8, 16}`` lattice one notch per patience run:

>>> from repro.service import BlockWidthController
>>> controller = BlockWidthController(initial=1, patience=2)
>>> for _ in range(4):   # four deep queries: stop position 8, k=8
...     controller.record(seconds=0.001, rounds=4, fetched_positions=8,
...                       stop_position=8, k=8)
>>> controller.width
4

The distributed stack is the same round-plan engine over a transport.
Here each of the three list owners runs in its **own OS process**,
serving length-prefixed JSON frames over TCP; the pipelined wire
protocol ships the batched protocol's messages as overlapped waves
(``repro-topk dist-bench`` measures the wall-clock saving at identical
message counts), and ``block_width`` fetches sorted/direct blocks
instead of single entries:

>>> from repro.distributed import DistributedBPA2
>>> remote = DistributedBPA2(transport="socket", protocol="pipelined",
...                          block_width=8).run(database, 3, SUM)
>>> remote.item_ids == result.item_ids
True
>>> remote.extras["transport"], remote.extras["network"]["messages"] > 0
('socket', True)

Owners are **multi-tenant**: ``owners=2`` co-locates the three lists on
two daemon processes (contiguous placement: lists 0,1 together) and the
transport coalesces each round's ops into one frame per owner —
identical answers, fewer frames.  Each daemon also serves a
``/metrics``-style stats endpoint (per-kind op counts, reservoir-
sampled latency quantiles):

>>> clustered = DistributedBPA2(transport="socket", protocol="pipelined",
...                             owners=2).run(database, 3, SUM)
>>> clustered.item_ids == result.item_ids, clustered.extras["owners"]
(True, 2)
>>> from repro import ColumnarDatabase
>>> from repro.distributed import SocketCluster
>>> with SocketCluster(ColumnarDatabase.from_database(database),
...                    owners=2) as cluster:
...     with cluster.connect() as fabric:
...         _ = fabric.request("owner/0", "sorted_next", {"list": 0})
...         metrics = fabric.request("owner/0", "state", {"metrics": True})
>>> cluster.placement.groups
((0, 1), (2,))
>>> metrics["lists"], metrics["ops"]["sorted_next"]
([0, 1], 1)
>>> metrics["latency"]["count"] == 1 and metrics["latency"]["p50_us"] > 0
True

A long-lived service survives restarts through epoch-stamped snapshot
files: ``save_snapshot`` persists the served columnar snapshot (atomic,
checksummed, compressed) and ``from_snapshot`` warm-starts a new
process from it — no cold rebuild, identical answers, epoch clock
resumed at the stamp:

>>> import pathlib, tempfile
>>> state = pathlib.Path(tempfile.mkdtemp()) / "state.bpsn"
>>> source = DynamicDatabase.from_score_rows(
...     [[9.0, 7.0, 5.0, 3.0, 1.0], [8.0, 6.0, 4.0, 2.0, 0.0]])
>>> service = QueryService(source, pool="serial")
>>> source.update_score(0, 2, 9.5)     # mutate, then persist
>>> service.submit(QuerySpec("ta", k=2)).item_ids
(0, 2)
>>> service.save_snapshot(state)       # returns the stamped epoch
1
>>> service.close()
>>> from repro.storage import verify_snapshot
>>> verify_snapshot(state).ok          # offline integrity audit
True
>>> restarted = QueryService.from_snapshot(state, pool="serial")
>>> restarted.submit(QuerySpec("ta", k=2)).item_ids
(0, 2)
>>> restarted.close()
"""

import time

from repro import (
    SUM,
    BestPositionAlgorithm,
    BestPositionAlgorithm2,
    CostModel,
    ThresholdAlgorithm,
    UniformGenerator,
)

N, M, K, SEED = 10_000, 8, 20, 42


def main() -> None:
    print(f"generating uniform database: n={N:,} items, m={M} lists (seed={SEED})")
    database = UniformGenerator().generate(N, M, seed=SEED)
    model = CostModel.paper(N)  # cs = 1, cr = log2(n)

    algorithms = [ThresholdAlgorithm(), BestPositionAlgorithm(), BestPositionAlgorithm2()]
    print(f"\ntop-{K} query, sum scoring:\n")
    print(f"{'algorithm':>10} {'stop pos':>10} {'accesses':>10} "
          f"{'exec cost':>12} {'time (ms)':>10}")
    baseline_cost = None
    for algorithm in algorithms:
        started = time.perf_counter()
        result = algorithm.run(database, K, SUM)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        cost = result.execution_cost(model)
        if baseline_cost is None:
            baseline_cost = cost
        print(f"{result.algorithm:>10} {result.stop_position:>10,} "
              f"{result.tally.total:>10,} {cost:>12,.0f} {elapsed_ms:>10.1f}"
              f"   ({baseline_cost / cost:4.2f}x vs TA)")

    result = BestPositionAlgorithm().run(database, K, SUM)
    print(f"\ntop-{K} answers (item id: overall score):")
    for entry in result.items:
        print(f"  item {entry.item:>6}: {entry.score:.4f}")


if __name__ == "__main__":
    main()
