"""Continuous top-k monitoring over updatable lists.

The paper's motivating applications (network monitoring, data streams,
sensor networks) do not query a frozen snapshot: local scores change
continuously.  This example models a trending-content dashboard:

* ``M`` regional servers each rank ``N`` videos by a decaying popularity
  score (their *dynamic sorted list*);
* every epoch, a burst of view events bumps some videos' scores and the
  global top-k is recomputed with BPA2.

Thanks to the order-statistic treap underneath
:class:`repro.dynamic.DynamicSortedList`, each score update costs
O(log n), and the top-k query still touches only a tiny prefix of every
list — the whole point of threshold-style algorithms.

Run:  python examples/continuous_monitoring.py
"""

import random

from repro import CostModel
from repro.algorithms.base import get_algorithm
from repro.dynamic import DynamicDatabase, DynamicSortedList

N_VIDEOS = 4_000
N_REGIONS = 5
K = 5
EPOCHS = 6
EVENTS_PER_EPOCH = 400
SEED = 99


def build_dashboard(rng: random.Random) -> DynamicDatabase:
    lists = []
    base_popularity = [rng.uniform(0.0, 100.0) for _ in range(N_VIDEOS)]
    for region in range(N_REGIONS):
        # Regional taste = global popularity + regional noise.
        entries = (
            (video, base_popularity[video] + rng.uniform(-10.0, 10.0))
            for video in range(N_VIDEOS)
        )
        lists.append(DynamicSortedList(entries, name=f"region-{region + 1}"))
    labels = {video: f"video-{video:04d}" for video in range(N_VIDEOS)}
    return DynamicDatabase(lists, labels=labels)


def apply_view_events(database: DynamicDatabase, rng: random.Random) -> int:
    """One epoch of traffic: bursty views concentrated on a few videos."""
    trending = [rng.randrange(N_VIDEOS) for _ in range(8)]
    for _ in range(EVENTS_PER_EPOCH):
        # 70% of events hit a currently-trending video.
        video = rng.choice(trending) if rng.random() < 0.7 else rng.randrange(N_VIDEOS)
        region = rng.randrange(N_REGIONS)
        database.apply_delta(region, video, rng.uniform(0.5, 3.0))
    return len(trending)


def main() -> None:
    rng = random.Random(SEED)
    database = build_dashboard(rng)
    model = CostModel.paper(N_VIDEOS)
    bpa2 = get_algorithm("bpa2")

    print(f"{N_REGIONS} regions x {N_VIDEOS:,} videos; "
          f"{EVENTS_PER_EPOCH} view events per epoch\n")
    naive_cost = model.execution_cost(
        get_algorithm("naive").run(database, K).tally
    )
    print(f"(naive rescan per epoch would cost {naive_cost:,.0f})\n")

    for epoch in range(1, EPOCHS + 1):
        apply_view_events(database, rng)
        result = bpa2.run(database, K)
        cost = result.execution_cost(model)
        top = ", ".join(
            f"{database.label(e.item)}({e.score:.0f})" for e in result.items[:3]
        )
        print(f"epoch {epoch}: top3 = {top}")
        print(f"         bpa2 cost={cost:>9,.0f}  "
              f"accesses={result.tally.total:>5,}  "
              f"stop={result.stop_position}")


if __name__ == "__main__":
    main()
