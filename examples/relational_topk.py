"""Relational top-k: best restaurants by a monotonic score over attributes.

The paper's first motivating example: "to find the top-k tuples in a
relational table according to some scoring function over its attributes
... it is sufficient to have a sorted (indexed) list of the values of
each attribute involved in the scoring function."

We synthesize a RESTAURANTS(food, service, value, proximity, price)
table and query it through :class:`repro.relational.Table`, which builds
one cached sorted index per attribute and runs BPA2 underneath.  Note
``minimize=("price",)``: lower prices rank higher via a monotone flip of
that index.

Run:  python examples/relational_topk.py
"""

import random

from repro.relational import Table

N_RESTAURANTS = 3_000
K = 5
SEED = 13

_ADJECTIVES = ("Golden", "Rusty", "Blue", "Urban", "Little", "Grand",
               "Smoky", "Velvet", "Iron", "Sunny")
_NOUNS = ("Fork", "Spoon", "Kettle", "Table", "Garden", "Harbor",
          "Lantern", "Oven", "Cellar", "Terrace")


def build_table() -> Table:
    """A synthetic restaurants table.

    Quality attributes (food/service) are correlated — well-run places
    score high on both — while proximity and price are independent,
    mirroring how real attribute indexes disagree.
    """
    rng = random.Random(SEED)
    rows = []
    for _ in range(N_RESTAURANTS):
        quality = rng.gauss(3.0, 1.0)
        rows.append({
            "food": min(5.0, max(0.0, quality + rng.gauss(0, 0.5))),
            "service": min(5.0, max(0.0, quality + rng.gauss(0, 0.7))),
            "value": rng.uniform(0.0, 5.0),
            "proximity": rng.uniform(0.0, 5.0),
            "price": round(rng.uniform(8.0, 120.0), 2),
        })
    labels = {
        rid: f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)} #{rid}"
        for rid in range(N_RESTAURANTS)
    }
    return Table("restaurants", {
        column: [row[column] for row in rows] for column in rows[0]
    }, labels=labels)


def main() -> None:
    table = build_table()
    print(f"{table!r}\n")

    # "Food lover on a budget who walks": food x3, proximity x2, and
    # cheaper is better (price is minimized with a small weight).
    result = table.topk(
        K,
        weights={"food": 3.0, "proximity": 2.0, "value": 1.0, "price": 0.02},
        minimize=("price",),
        algorithm="bpa2",
    )

    print(f"top-{K} restaurants (food x3, proximity x2, cheap preferred):")
    for rank, row in enumerate(result.rows, start=1):
        detail = ", ".join(
            f"{column}={row.values[column]:.1f}" for column in result.columns
        )
        print(f"  {rank}. {row.label:<22} score={row.score:.2f}  ({detail})")

    stats = result.stats
    full_scan = table.n_rows * len(result.columns)
    print(f"\nBPA2 answered with {stats.tally.total:,} index accesses "
          f"(deepest index position touched: {stats.stop_position}); "
          f"a full scan reads {full_scan:,} entries.")

    # Re-running with another algorithm reuses the cached indexes.
    naive = table.topk(
        K,
        weights={"food": 3.0, "proximity": 2.0, "value": 1.0, "price": 0.02},
        minimize=("price",),
        algorithm="naive",
    )
    assert [r.score for r in naive.rows] == [r.score for r in result.rows]
    print("(verified identical to the full-scan answer)")


if __name__ == "__main__":
    main()
